"""Differential tests: every engine execution mode agrees bit-for-bit.

The paper's science must not depend on *how* the pipeline ran.  The
full Cactus suite is characterized four ways — serial, process-pool
parallel, cold persistent cache, warm persistent cache — and every
resulting :class:`Characterization` must compare **equal** (dataclass
equality: every float identical, every kernel in the same order).
Any model change that breaks this equivalence is a bug in the engine,
not in the model.
"""

import pytest

from repro.core import (
    LAPTOP_SCALE,
    CharacterizationEngine,
    ResultCache,
    characterize,
    diff_characterizations,
    diff_suite_results,
    run_suite,
)
from repro.core.serialize import (
    characterization_from_dict,
    characterization_to_dict,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def serial_run():
    return run_suite(["Cactus"], preset=LAPTOP_SCALE)


class TestSerialVsParallel:
    def test_parallel_matches_serial_exactly(self, serial_run):
        parallel = run_suite(["Cactus"], preset=LAPTOP_SCALE, jobs=4)
        assert diff_suite_results(serial_run, parallel) == []
        assert serial_run.results == parallel.results

    def test_parallel_preserves_registration_order(self, serial_run):
        parallel = run_suite(["Cactus"], preset=LAPTOP_SCALE, jobs=3)
        assert list(parallel.results) == list(serial_run.results)


class TestColdAndWarmCache:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("engine-cache")

    def test_cold_cache_matches_serial(self, serial_run, cache_dir):
        cold_cache = ResultCache(cache_dir=cache_dir)
        cold = run_suite(["Cactus"], preset=LAPTOP_SCALE, cache=cold_cache)
        assert diff_suite_results(serial_run, cold) == []
        # Everything was computed and stored, nothing served warm at the
        # characterization level.
        assert cold_cache.stats.stores > 0
        assert cold_cache.persistent_entries() == cold_cache.stats.stores

    def test_warm_cache_matches_serial(self, serial_run, cache_dir):
        # Depends on test_cold_cache_matches_serial having populated
        # cache_dir (pytest runs the class in definition order).
        warm_cache = ResultCache(cache_dir=cache_dir)
        warm = run_suite(["Cactus"], preset=LAPTOP_SCALE, cache=warm_cache)
        assert warm_cache.stats.disk_hits == len(warm)
        assert warm_cache.stats.stores == 0
        assert diff_suite_results(serial_run, warm) == []
        assert serial_run.results == warm.results

    def test_warm_parallel_matches_serial(self, serial_run, cache_dir):
        warm_cache = ResultCache(cache_dir=cache_dir)
        warm = run_suite(
            ["Cactus"], preset=LAPTOP_SCALE, jobs=4, cache=warm_cache
        )
        assert diff_suite_results(serial_run, warm) == []


class TestSerializationRoundTrip:
    def test_characterization_round_trips_exactly(self, serial_run):
        for abbr, result in serial_run.results.items():
            clone = characterization_from_dict(
                characterization_to_dict(result)
            )
            assert diff_characterizations(result, clone, abbr) == []
            assert clone == result

    def test_json_round_trip_through_text(self, serial_run):
        import json

        result = serial_run["GMS"]
        text = json.dumps(characterization_to_dict(result))
        clone = characterization_from_dict(json.loads(text))
        assert clone == result

    def test_curve_and_tags_are_tuples_after_round_trip(self, serial_run):
        result = serial_run["GMS"]
        clone = characterization_from_dict(characterization_to_dict(result))
        assert all(isinstance(pair, tuple) for pair in clone.cumulative_curve)
        assert all(
            isinstance(k.tags, tuple) for k in clone.profile.kernels
        )
        assert all(
            isinstance(k.metrics.tags, tuple) for k in clone.profile.kernels
        )


class TestEngineBehaviour:
    def test_single_workload_cache_hit(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        workload = get_workload("GST", scale=0.005)
        first = characterize(workload, cache=cache)
        again = characterize(
            get_workload("GST", scale=0.005),
            cache=ResultCache(cache_dir=tmp_path),
        )
        assert first == again

    def test_different_scale_misses(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        first = characterize(get_workload("GST", scale=0.005), cache=cache)
        stores_before = cache.stats.stores
        second = characterize(get_workload("GST", scale=0.004), cache=cache)
        # The app-level entry cannot be reused: the launch stream (and
        # therefore the content-addressed key) differs, so the second
        # run computed and stored fresh entries.
        assert cache.stats.stores > stores_before
        assert first != second

    def test_engine_selects_in_registration_order(self):
        engine = CharacterizationEngine()
        assert engine.select(["Cactus"])[:3] == ["GMS", "LMR", "LMC"]
        assert engine.select(["Cactus"], workloads=["lgt", "GMS"]) == [
            "GMS",
            "LGT",
        ]
        with pytest.raises(ValueError):
            engine.select(["Cactus"], workloads=["NOPE"])

    def test_memory_only_cache_serves_second_call(self):
        engine = CharacterizationEngine(cache=ResultCache())
        a = engine.run_suite(["Cactus"], preset=LAPTOP_SCALE,
                             workloads=["GRU"])
        stores = engine.cache_stats.stores
        b = engine.run_suite(["Cactus"], preset=LAPTOP_SCALE,
                             workloads=["GRU"])
        assert engine.cache_stats.memory_hits >= 1
        assert engine.cache_stats.stores == stores
        assert a.results == b.results
