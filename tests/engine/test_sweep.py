"""Engine-level sweep guarantees: parity, one-stream, resume, interop.

The sweep pipeline promises that ``run_sweep`` is a pure *speed* win:
every per-device characterization is bit-for-bit what a scalar
``run_suite`` on that device produces, streams are generated exactly
once per run (verified from the obs span counts, not trusted), the
result cache is shared in both directions, and the journal resumes a
sweep the same way it resumes a suite run.
"""

import pytest

from repro.core import (
    CharacterizationEngine,
    ResultCache,
    StreamCache,
    run_suite,
    run_sweep,
)
from repro.core.config import LAPTOP_SCALE
from repro.gpu import DEVICE_ZOO, RTX_3080, V100

ZOO = list(DEVICE_ZOO.values())
WLS = ["GMS", "GST", "DCG"]


@pytest.fixture(scope="module")
def sweep_report():
    return run_sweep([RTX_3080, V100], workloads=WLS)


class TestSweepParity:
    def test_matches_scalar_suite_per_device(self, sweep_report):
        """The headline differential: sweep slice == scalar suite."""
        for device in (RTX_3080, V100):
            suite = run_suite(workloads=WLS, device=device)
            for abbr in WLS:
                assert (
                    sweep_report.results[abbr][device.name]
                    == suite.results[abbr]
                ), (abbr, device.name)

    def test_for_device_view_is_a_suite_result(self, sweep_report):
        view = sweep_report.for_device("V100")
        assert view.device.name == "V100"
        assert set(view.results) == set(WLS)
        assert view["GST"] is sweep_report.results["GST"]["V100"]

    def test_ordering_and_validation(self, sweep_report):
        assert list(sweep_report.results) == WLS  # registration order
        assert list(sweep_report.results["GMS"]) == ["RTX 3080", "V100"]
        engine = CharacterizationEngine()
        with pytest.raises(ValueError):
            engine.run_sweep([])
        with pytest.raises(ValueError):
            engine.run_sweep([RTX_3080, RTX_3080], workloads=WLS)


class TestOneStreamManyDevices:
    def test_stream_generated_once_per_workload(self):
        """Acceptance: an 8-device sweep runs one stream-gen span per
        workload — the span count is measured, not assumed."""
        report = run_sweep(ZOO, workloads=WLS)
        gen = report.run_profile.histograms.get("span.stream-gen_s")
        assert gen is not None and gen["count"] == len(WLS)
        sims = report.run_profile.histograms.get("span.simulate-devices_s")
        assert sims is not None and sims["count"] == len(WLS)

    def test_stream_cache_skips_generation_on_second_run(self, tmp_path):
        stream_cache = StreamCache(cache_dir=tmp_path / "streams")
        engine = CharacterizationEngine(stream_cache=stream_cache)
        first = engine.run_sweep([RTX_3080, V100], workloads=WLS)
        gen1 = first.run_profile.histograms["span.stream-gen_s"]["count"]
        assert gen1 == len(WLS)
        # A fresh engine (fresh process in real life), same stream dir:
        # zero generations, identical results.
        engine2 = CharacterizationEngine(
            stream_cache=StreamCache(cache_dir=tmp_path / "streams")
        )
        second = engine2.run_sweep([RTX_3080, V100], workloads=WLS)
        assert "span.stream-gen_s" not in second.run_profile.histograms
        for abbr in WLS:
            assert second.results[abbr] == first.results[abbr]


class TestCacheInterop:
    def test_suite_run_warms_sweep_and_back(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        suite = run_suite(workloads=WLS, device=V100, cache_dir=cache_dir)
        sweep = run_sweep(
            [RTX_3080, V100], workloads=WLS, cache_dir=cache_dir
        )
        # V100 came straight from the suite's entries...
        hits = sweep.run_profile.counter(
            "cache.memory_hits"
        ) + sweep.run_profile.counter("cache.disk_hits")
        assert hits >= len(WLS)
        for abbr in WLS:
            assert sweep.results[abbr]["V100"] == suite.results[abbr]
        # ...and the sweep's RTX 3080 entries warm a later suite run.
        suite2 = run_suite(
            workloads=WLS, device=RTX_3080, cache_dir=cache_dir
        )
        for abbr in WLS:
            assert suite2.results[abbr] == sweep.results[abbr]["RTX 3080"]

    def test_fully_cached_sweep_never_simulates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(
            [RTX_3080, V100], workloads=WLS, cache_dir=cache_dir
        )
        again = run_sweep(
            [RTX_3080, V100], workloads=WLS, cache_dir=cache_dir
        )
        profile = again.run_profile
        assert "span.simulate-devices_s" not in profile.histograms
        assert "span.stream-gen_s" not in profile.histograms
        for abbr in WLS:
            assert again.results[abbr] == first.results[abbr]


class TestParallelAndResume:
    def test_parallel_equals_serial(self, sweep_report):
        parallel = run_sweep([RTX_3080, V100], workloads=WLS, jobs=2)
        for abbr in WLS:
            assert parallel.results[abbr] == sweep_report.results[abbr]

    def test_journal_resumes_completed_workloads(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        first = run_sweep(
            [RTX_3080, V100], workloads=WLS, journal_dir=journal_dir
        )
        assert first.resumed == []
        second = run_sweep(
            [RTX_3080, V100], workloads=WLS, journal_dir=journal_dir
        )
        assert second.resumed == WLS
        for abbr in WLS:
            assert second.results[abbr] == first.results[abbr]

    def test_journal_identity_includes_devices(self, tmp_path):
        """Adding a device must start fresh, not resume short markers."""
        journal_dir = str(tmp_path / "journal")
        run_sweep([RTX_3080], workloads=WLS, journal_dir=journal_dir)
        wider = run_sweep(
            [RTX_3080, V100], workloads=WLS, journal_dir=journal_dir
        )
        assert wider.resumed == []
        assert all(len(wider.results[a]) == 2 for a in WLS)


class TestEngineStreamMemo:
    def test_characterize_twice_generates_once(self):
        """Satellite: same workload object on two devices pays stream
        generation once (the engine memoizes per object identity)."""
        from repro.workloads import get_workload

        calls = {"n": 0}
        workload = get_workload(
            "GST",
            scale=LAPTOP_SCALE.for_workload("GST"),
            seed=LAPTOP_SCALE.seed,
        )
        original = workload.launch_stream

        def counting():
            calls["n"] += 1
            return original()

        workload.launch_stream = counting
        engine = CharacterizationEngine(device=RTX_3080)
        first = engine.characterize(workload)
        engine.device = V100
        second = engine.characterize(workload)
        assert calls["n"] == 1
        assert first.abbr == second.abbr == "GST"
        # Different devices, so genuinely different characterizations.
        assert first.profile.total_time_s != second.profile.total_time_s
