"""Unit tests for the two-tier result cache."""

import json

import pytest

from repro.core.cache import CacheStats, ResultCache
from repro.gpu.digest import CACHE_SCHEMA_VERSION

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestMemoryTier:
    def test_roundtrip(self):
        cache = ResultCache()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"value": 1})
        assert cache.get(KEY_A) == {"value": 1}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a" * 64, {"n": 1})
        cache.put("b" * 64, {"n": 2})
        assert cache.get("a" * 64) == {"n": 1}  # refresh "a"
        cache.put("c" * 64, {"n": 3})  # evicts "b", the LRU entry
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) == {"n": 1}
        assert cache.get("c" * 64) == {"n": 3}

    def test_zero_capacity_disables_memory_tier(self):
        cache = ResultCache(max_memory_entries=0)
        cache.put(KEY_A, {"v": 1})
        assert len(cache) == 0
        assert cache.get(KEY_A) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_memory_entries=-1)


class TestPersistentTier:
    def test_survives_process_boundary_simulation(self, tmp_path):
        ResultCache(cache_dir=tmp_path).put(KEY_A, {"value": 42})
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY_A) == {"value": 42}
        assert fresh.stats.disk_hits == 1

    def test_layout_is_versioned_and_fanned_out(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY_A, {"v": 1})
        expected = (
            tmp_path
            / f"v{CACHE_SCHEMA_VERSION}"
            / KEY_A[:2]
            / f"{KEY_A}.json"
        )
        assert expected.is_file()
        assert json.loads(expected.read_text()) == {"v": 1}

    def test_corrupt_entry_is_a_quarantined_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY_A, {"v": 1})
        path = cache._path(KEY_A)
        path.write_text("{ not json", encoding="utf-8")
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY_A) is None
        assert fresh.stats.misses == 1
        assert fresh.stats.corrupt == 1
        # Moved aside for post-mortem inspection, not left in place.
        assert not path.exists()
        assert (tmp_path / "corrupt" / path.name).is_file()

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultCache(cache_dir=tmp_path).put(KEY_A, {"v": 1})
        fresh = ResultCache(cache_dir=tmp_path)
        fresh.get(KEY_A)
        fresh.get(KEY_A)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1

    def test_persistent_entries_counts_current_version(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})
        assert cache.persistent_entries() == 2

    def test_prune_drops_stale_version_trees(self, tmp_path):
        stale = tmp_path / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / ("ab" + "0" * 62 + ".json")).write_text("{}")
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY_A, {"v": 1})
        assert cache.prune() == 1
        assert not (tmp_path / "v0").exists()
        assert cache.persistent_entries() == 1


class TestStats:
    def test_merge_and_render(self):
        a = CacheStats(memory_hits=1, disk_hits=2, misses=3, stores=4)
        b = CacheStats(
            memory_hits=10, disk_hits=20, misses=30, stores=40, corrupt=2,
            proxy_hits=3,
        )
        a.merge(b)
        assert a.as_dict() == {
            "memory_hits": 11,
            "disk_hits": 22,
            "misses": 33,
            "stores": 44,
            "corrupt": 2,
            "proxy_hits": 3,
        }
        assert a.hits == 33
        assert a.lookups == 66
        assert a.effective_hits == 36
        assert a.effective_hit_rate == 36 / 66
        assert "hit rate 50%" in a.render()
        assert "3 proxy hits" in a.render()
        assert "2 corrupt entries quarantined" in a.render()

    def test_proxy_tier_absent_from_render_when_zero(self):
        stats = CacheStats(memory_hits=1, misses=1)
        assert "proxy" not in stats.render()
        assert stats.effective_hits == stats.hits

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert "0/0 hits" in stats.render()
