"""Property-based tests for the content-addressed cache keys.

The cache is only sound if its keys are (a) stable — the same inputs
hash identically in every process, run, and ``PYTHONHASHSEED`` — and
(b) collision-free across distinct devices, simulation options, and
kernels.  Hypothesis drives (b); a subprocess round trip checks (a).
"""

import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.digest import (
    CACHE_SCHEMA_VERSION,
    canonicalize,
    kernel_digest,
    kernel_metrics_key,
    launch_stream_digest,
    stable_digest,
)
from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    KernelLaunch,
    MemoryFootprint,
)
from repro.gpu.simulator import SimulationOptions, GPUSimulator
from repro.gpu.timing import TimingOptions

# -- strategies --------------------------------------------------------

finite = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)
fraction = st.floats(min_value=0.0, max_value=0.2)

devices = st.builds(
    DeviceSpec,
    name=st.sampled_from(["A", "B", "dev"]),
    num_sms=st.integers(min_value=1, max_value=256),
    warp_schedulers_per_sm=st.integers(min_value=1, max_value=8),
    warp_insts_per_cycle=st.sampled_from([0.5, 1.0, 2.0]),
    clock_ghz=st.floats(min_value=0.5, max_value=3.0),
    dram_bandwidth_gbs=st.floats(min_value=50.0, max_value=4000.0),
)

options = st.builds(
    SimulationOptions,
    timing=st.builds(
        TimingOptions,
        dram_efficiency=st.floats(min_value=0.1, max_value=1.0),
        model_launch_overhead=st.booleans(),
        model_latency=st.booleans(),
    ),
    model_caches=st.booleans(),
)

kernels = st.builds(
    KernelCharacteristics,
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=24,
    ),
    grid_blocks=st.integers(min_value=1, max_value=1 << 20),
    threads_per_block=st.integers(min_value=1, max_value=1024),
    warp_insts=finite,
    mix=st.builds(
        InstructionMix, fp32=fraction, ld_st=fraction,
        branch=fraction, sync=fraction,
    ),
    memory=st.builds(
        MemoryFootprint,
        bytes_read=finite,
        bytes_written=st.floats(min_value=0.0, max_value=1e9),
        reuse_factor=st.floats(min_value=1.0, max_value=64.0),
        l1_locality=st.floats(min_value=0.0, max_value=1.0),
        coalescence=st.floats(min_value=0.05, max_value=1.0),
    ),
    ilp=st.floats(min_value=1.0, max_value=8.0),
    mlp=st.floats(min_value=1.0, max_value=16.0),
)


# -- stability ---------------------------------------------------------

class TestStability:
    @given(devices, options, kernels)
    @settings(max_examples=50, deadline=None)
    def test_key_deterministic_within_process(self, device, opts, kernel):
        assert kernel_metrics_key(device, opts, kernel) == kernel_metrics_key(
            device, opts, kernel
        )

    @given(kernels)
    @settings(max_examples=50, deadline=None)
    def test_equal_objects_hash_equal(self, kernel):
        import dataclasses

        clone = dataclasses.replace(kernel)
        assert clone == kernel
        assert kernel_digest(clone) == kernel_digest(kernel)

    def test_key_stable_across_processes(self):
        """A fresh interpreter (different PYTHONHASHSEED) agrees."""
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "from repro.gpu.device import RTX_3080\n"
            "from repro.gpu.digest import kernel_metrics_key\n"
            "from repro.gpu.simulator import SimulationOptions\n"
            "from repro.gpu.kernel import KernelCharacteristics, "
            "MemoryFootprint\n"
            "k = KernelCharacteristics(name='probe', grid_blocks=128, "
            "threads_per_block=256, warp_insts=1.5e6, "
            "memory=MemoryFootprint(bytes_read=3.25e5))\n"
            "print(kernel_metrics_key(RTX_3080, SimulationOptions(), k))\n"
        )
        env = dict(os.environ)
        env.update({"PYTHONHASHSEED": "12345", "PYTHONPATH": src})
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        kernel = KernelCharacteristics(
            name="probe",
            grid_blocks=128,
            threads_per_block=256,
            warp_insts=1.5e6,
            memory=MemoryFootprint(bytes_read=3.25e5),
        )
        local = kernel_metrics_key(RTX_3080, SimulationOptions(), kernel)
        assert out.stdout.strip() == local

    def test_pinned_digest_guards_schema_version(self):
        """Canonical-form changes MUST bump CACHE_SCHEMA_VERSION.

        If this assertion fires, the hashing scheme changed: either
        revert the change or bump
        ``repro.gpu.digest.CACHE_SCHEMA_VERSION`` (invalidating every
        persisted entry) and update the pinned value here.
        """
        assert CACHE_SCHEMA_VERSION == 1
        assert stable_digest(["pin", CACHE_SCHEMA_VERSION, 1.5, "x"]) == (
            "d01cc079ca414a75b2e2fe13b2eac22b"
            "cc12f392823a6b44e7ae2a3a5e8e8f74"
        )


# -- collision resistance ----------------------------------------------

class TestCollisions:
    @given(devices, devices, options, kernels)
    @settings(max_examples=50, deadline=None)
    def test_distinct_devices_never_collide(self, d1, d2, opts, kernel):
        if d1 == d2:
            assert kernel_metrics_key(d1, opts, kernel) == kernel_metrics_key(
                d2, opts, kernel
            )
        else:
            assert kernel_metrics_key(d1, opts, kernel) != kernel_metrics_key(
                d2, opts, kernel
            )

    @given(options, options, kernels)
    @settings(max_examples=50, deadline=None)
    def test_distinct_options_never_collide(self, o1, o2, kernel):
        k1 = kernel_metrics_key(RTX_3080, o1, kernel)
        k2 = kernel_metrics_key(RTX_3080, o2, kernel)
        assert (k1 == k2) == (o1 == o2)

    @given(kernels, kernels)
    @settings(max_examples=50, deadline=None)
    def test_distinct_kernels_never_collide(self, k1, k2):
        d1, d2 = kernel_digest(k1), kernel_digest(k2)
        assert (d1 == d2) == (k1 == k2)

    def test_no_cache_ablation_uses_distinct_key(self):
        """The `_NoCacheModel` ablation must not poison default entries."""
        kernel = KernelCharacteristics(
            name="k",
            grid_blocks=64,
            threads_per_block=128,
            warp_insts=1e6,
            memory=MemoryFootprint(bytes_read=1e6),
        )
        default = kernel_metrics_key(
            RTX_3080, SimulationOptions(), kernel
        )
        ablated = kernel_metrics_key(
            RTX_3080, SimulationOptions(model_caches=False), kernel
        )
        assert default != ablated

    def test_ablation_results_cached_separately(self, tmp_path):
        from repro.core.cache import ResultCache

        kernel = KernelCharacteristics(
            name="reuse",
            grid_blocks=512,
            threads_per_block=256,
            warp_insts=1e7,
            memory=MemoryFootprint(
                bytes_read=1e6, reuse_factor=16.0, l1_locality=0.9
            ),
        )
        cache = ResultCache(cache_dir=tmp_path)
        modeled = GPUSimulator(cache=cache).run_kernel(kernel)
        ablated = GPUSimulator(
            options=SimulationOptions(model_caches=False), cache=cache
        ).run_kernel(kernel)
        # Different keys → the second run simulated (stored), not hit.
        assert cache.stats.hits == 0
        assert cache.stats.stores == 2
        assert ablated.dram_transactions > modeled.dram_transactions


# -- stream digests ----------------------------------------------------

class TestStreamDigest:
    @given(st.lists(kernels, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_order_sensitive(self, kernel_list):
        launches = [KernelLaunch(kernel=k) for k in kernel_list]
        digest = launch_stream_digest(launches)
        assert digest == launch_stream_digest(launches)
        reordered = list(reversed(launches))
        if [l.kernel for l in reordered] != [l.kernel for l in launches]:
            assert launch_stream_digest(reordered) != digest

    def test_phase_and_stream_id_matter(self):
        kernel = KernelCharacteristics(
            name="k",
            grid_blocks=1,
            threads_per_block=32,
            warp_insts=1.0,
            memory=MemoryFootprint(bytes_read=32.0),
        )
        base = launch_stream_digest([KernelLaunch(kernel=kernel)])
        assert (
            launch_stream_digest([KernelLaunch(kernel=kernel, stream_id=1)])
            != base
        )
        assert (
            launch_stream_digest([KernelLaunch(kernel=kernel, phase="p")])
            != base
        )


class TestCanonicalize:
    def test_rejects_unhashable_types(self):
        import pytest

        with pytest.raises(TypeError):
            canonicalize(object())
        with pytest.raises(TypeError):
            canonicalize({1: "non-string key"})

    def test_float_exactness(self):
        # 0.1 + 0.2 != 0.3: the canonical form must distinguish them.
        assert stable_digest(0.1 + 0.2) != stable_digest(0.3)
