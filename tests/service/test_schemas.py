"""Request validation and the job-key (coalescing) contract."""

import pytest

from repro.core.engine import CharacterizationEngine
from repro.gpu.device import DEVICE_ZOO, device_by_name
from repro.service.schemas import (
    MAX_ENGINE_JOBS,
    JobRequest,
    ValidationError,
    parse_job_request,
    zoo_payload,
)


def _parse(**overrides):
    payload = {"workloads": ["DCG"], "device": "RTX 3080"}
    payload.update(overrides)
    return parse_job_request(payload)


class TestParsing:
    def test_minimal_request_defaults(self):
        request = parse_job_request({})
        assert request.kind == "suite"
        assert request.suites == ("Cactus",)
        assert request.preset.name == "laptop"
        assert request.device.name == "RTX 3080"
        assert request.proxy_tol is None
        assert request.jobs == 1

    def test_round_trips_through_to_dict(self):
        request = _parse(
            preset="laptop",
            proxy_tol=0.25,
            jobs=2,
            options={"model_caches": False},
        )
        again = parse_job_request(request.to_dict())
        assert again == request
        assert again.job_key() == request.job_key()

    def test_inline_device_spec_equals_zoo_lookup(self):
        zoo = _parse(device="V100")
        spec = device_by_name("V100")
        inline = _parse(
            device={f: getattr(spec, f) for f in spec.__dataclass_fields__}
        )
        assert inline.device == zoo.device
        assert inline.job_key() == zoo.job_key()

    def test_sweep_request(self):
        request = parse_job_request(
            {
                "kind": "sweep",
                "workloads": ["DCG"],
                "devices": ["RTX 3080", "V100"],
            }
        )
        assert request.kind == "sweep"
        assert [d.name for d in request.devices] == [
            "RTX 3080", "V100",
        ]

    def test_workload_selection_resolves_in_registration_order(self):
        request = _parse(workloads=["nst", "DCG"])  # case-insensitive
        assert request.selected() == ["DCG", "NST"]


class TestValidationErrors:
    def test_collects_every_error(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_job_request(
                {
                    "kind": "banana",
                    "preset": "galactic",
                    "jobs": "many",
                    "proxy_tol": -1,
                    "frobnicate": True,
                }
            )
        details = "\n".join(excinfo.value.errors)
        for fragment in (
            "kind", "preset", "jobs", "proxy_tol", "frobnicate",
        ):
            assert fragment in details
        assert len(excinfo.value.errors) >= 5

    def test_as_dict_shape(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_job_request({"workloads": []})
        payload = excinfo.value.as_dict()
        assert payload["error"] == "invalid request"
        assert isinstance(payload["details"], list)

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"device": "No Such GPU"},
            {"device": {"name": "x", "bogus_field": 1}},
            {"workloads": ["NOPE"]},
            {"suites": ["NoSuchSuite"]},
            {"kind": "sweep", "devices": []},
            {"kind": "sweep", "devices": ["RTX 3080", "RTX 3080"]},
            {"kind": "sweep", "device": "RTX 3080"},
            {"kind": "suite", "devices": ["RTX 3080"]},
            {"options": {"nonsense": 1}},
            {"options": {"timing": {"nonsense": 1}}},
            {"proxy_tol": float("nan")},
            {"proxy_tol": True},
            {"jobs": MAX_ENGINE_JOBS + 1},
            {"jobs": -1},
        ],
    )
    def test_rejected_payloads(self, payload):
        if isinstance(payload, dict):
            payload.setdefault("workloads", ["DCG"])
        with pytest.raises(ValidationError):
            parse_job_request(payload)


class TestJobKey:
    """The coalescing contract: same key iff same engine results."""

    def test_key_is_engine_run_key_based(self):
        request = _parse()
        engine = CharacterizationEngine(
            device=request.device, options=request.options
        )
        base = engine.run_key(request.preset, request.selected())
        # The service key is a digest *over* the engine key: any change
        # to the engine's run identity changes the job key too.
        assert request.job_key() != base
        assert _parse().job_key() == request.job_key()

    def test_result_affecting_fields_change_the_key(self):
        base = _parse().job_key()
        assert _parse(workloads=["NST"]).job_key() != base
        assert _parse(device="V100").job_key() != base
        assert _parse(proxy_tol=0.5).job_key() != base
        assert (
            _parse(options={"model_caches": False}).job_key() != base
        )
        assert (
            _parse(options={"timing": {"dram_efficiency": 0.5}}).job_key()
            != base
        )

    def test_execution_details_do_not_change_the_key(self):
        assert _parse(jobs=1).job_key() == _parse(jobs=4).job_key()

    def test_suite_and_sweep_keys_differ(self):
        suite_key = _parse().job_key()
        sweep_key = parse_job_request(
            {"kind": "sweep", "workloads": ["DCG"], "devices": ["RTX 3080"]}
        ).job_key()
        assert suite_key != sweep_key


class TestZooPayload:
    def test_lists_every_device_with_derived_rates(self):
        payload = zoo_payload()
        assert {entry["name"] for entry in payload} == set(DEVICE_ZOO)
        for entry in payload:
            assert entry["peak_gips"] > 0
            assert entry["peak_gtxn_per_s"] > 0
            assert entry["roofline_elbow"] > 0
