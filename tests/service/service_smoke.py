"""End-to-end process-level smoke for ``python -m repro serve``.

Run directly (CI does): ``python tests/service/service_smoke.py``.

Boots a real server subprocess on an ephemeral port and proves the
service's four acceptance properties against it:

1. **Coalescing** — N concurrent identical submissions yield one job id
   with exactly one non-coalesced response, and the job's run profile
   shows ``engine.runs == 1`` (one engine execution, counted by the
   engine itself, not the service).
2. **Event streaming** — the ndjson stream of ``/v1/jobs/{id}/events``
   equals the on-disk ``events.jsonl`` line for line.
3. **Differential** — the service's stored result is bit-identical to a
   direct in-process ``run_suite`` serialization.
4. **Drain + resume** — SIGTERM mid-run persists the job as
   interrupted; a restarted server (same state dir) re-queues it, the
   engine journal skips completed workloads (``resumed`` non-empty),
   and an identical resubmission coalesces onto the recovered job.

Exit code 0 on success.  On failure the state dir (``--state-dir`` or
``$SMOKE_STATE_DIR``) holds the server logs and every events.jsonl —
CI uploads it as an artifact.
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro.core.config import LAPTOP_SCALE  # noqa: E402
from repro.core.engine import CharacterizationEngine  # noqa: E402
from repro.core.serialize import suite_run_report_to_dict  # noqa: E402
from repro.gpu.device import device_by_name  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.workloads import list_workloads  # noqa: E402

FAST_REQUEST = {"workloads": ["DCG", "NST"], "device": "RTX 3080"}
FULL_REQUEST = {"suites": ["Cactus"], "device": "RTX 3080"}


def log(message: str) -> None:
    print(f"[smoke] {message}", flush=True)


def fail(message: str) -> "None":
    print(f"[smoke] FAIL: {message}", file=sys.stderr, flush=True)
    raise SystemExit(1)


def start_server(state_dir: pathlib.Path, log_name: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_TRACE_DIR", None)  # per-job traces only
    log_file = open(state_dir / log_name, "w", encoding="utf-8")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0",
            "--workers", "1",
            "--drain-grace", "1.0",
            "--quota-burst", "256",
            "--quota-rate", "256",
        ],
        stdout=log_file,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=str(REPO),
    )
    return process


def wait_for_server(
    state_dir: pathlib.Path, process: subprocess.Popen, timeout_s: float = 30
) -> ServiceClient:
    discovery = state_dir / "server.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        if discovery.exists():
            try:
                client = ServiceClient.from_state_dir(
                    state_dir, client_id="smoke"
                )
                if client.healthz()["status"] == "ok":
                    return client
            except Exception:
                pass
        time.sleep(0.05)
    fail("server did not become healthy in time")
    raise AssertionError  # unreachable


def stop_server(process: subprocess.Popen, timeout_s: float = 30) -> int:
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        process.kill()
        fail("server did not drain after SIGTERM")
        raise AssertionError  # unreachable


def phase_coalescing(client: ServiceClient) -> str:
    n = 6
    responses = []
    lock = threading.Lock()

    def post() -> None:
        response = client.submit(FAST_REQUEST)
        with lock:
            responses.append(response)

    threads = [threading.Thread(target=post) for _ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    ids = {r["id"] for r in responses}
    admitted = sum(1 for r in responses if not r["coalesced"])
    if len(ids) != 1:
        fail(f"{n} identical submissions produced {len(ids)} job ids")
    if admitted != 1:
        fail(f"expected exactly 1 non-coalesced response, got {admitted}")
    job_id = ids.pop()

    final = client.wait(job_id, timeout_s=120)
    if final["state"] != "done":
        fail(f"job finished {final['state']}: {final.get('error')}")
    engine_runs = final["result"]["run_profile"]["counters"].get(
        "engine.runs"
    )
    if engine_runs != 1.0:
        fail(f"run profile shows engine.runs={engine_runs}, want 1")
    health = client.healthz()
    if health["engine_runs"]["started"] != 1:
        fail(f"service counted {health['engine_runs']} engine runs")
    if health["coalesce"]["coalesced"] != n - 1:
        fail(f"coalesce counters wrong: {health['coalesce']}")
    log(
        f"coalescing OK: {n} submissions -> 1 job ({job_id[:12]}...), "
        "engine.runs=1"
    )
    return job_id


def phase_events(
    client: ServiceClient, state_dir: pathlib.Path, job_id: str
) -> None:
    streamed = client.events(job_id)
    events_path = (
        state_dir / "runs" / job_id[:32] / "trace" / "events.jsonl"
    )
    on_disk = [
        json.loads(line)
        for line in events_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not streamed:
        fail("event stream was empty")
    if streamed != on_disk:
        fail(
            f"streamed {len(streamed)} events != {len(on_disk)} on disk "
            f"({events_path})"
        )
    log(f"event stream OK: {len(streamed)} events match {events_path}")


def phase_differential(client: ServiceClient, job_id: str) -> None:
    service_result = client.job(job_id)["result"]
    engine = CharacterizationEngine(device=device_by_name("RTX 3080"))
    report = engine.run_suite(
        ["Cactus"], preset=LAPTOP_SCALE, workloads=FAST_REQUEST["workloads"]
    )
    expected = suite_run_report_to_dict(report)
    if service_result["results"] != expected["results"]:
        fail("service result differs from direct run_suite")
    log("differential OK: service result bit-identical to run_suite")


def phase_drain_and_resume(
    state_dir: pathlib.Path, process: subprocess.Popen
) -> None:
    client = ServiceClient.from_state_dir(state_dir, client_id="smoke")
    accepted = client.submit(FULL_REQUEST)
    job_id = accepted["id"]
    journal_done = state_dir / "runs" / job_id[:32] / "journal" / "done"

    # Let the engine checkpoint some (not all) workloads, then SIGTERM.
    total = len(list_workloads("Cactus"))
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        done = len(list(journal_done.glob("*.json"))) if journal_done.exists() else 0
        if done >= 2:
            break
        time.sleep(0.02)
    else:
        fail("journal never checkpointed any workload")

    code = stop_server(process)
    if code != 0:
        fail(f"drained server exited {code}, want 0")
    job_file = state_dir / "jobs" / f"{job_id[:32]}.json"
    persisted = json.loads(job_file.read_text(encoding="utf-8"))
    if persisted["state"] == "done":
        # The run beat the SIGTERM — legal but the resume phase would
        # prove nothing; with laptop-scale Cactus this should not
        # happen (the suite takes seconds, the kill lands mid-run).
        fail("run finished before SIGTERM; cannot exercise resume")
    if persisted["state"] != "interrupted":
        fail(f"persisted state {persisted['state']!r}, want 'interrupted'")
    checkpointed = len(list(journal_done.glob("*.json")))
    log(
        f"drain OK: SIGTERM left job interrupted with "
        f"{checkpointed}/{total} workloads journaled"
    )

    # Restart on the same state dir: the job is re-queued and resumes.
    (state_dir / "server.json").unlink()
    restarted = start_server(state_dir, "server-restart.log")
    try:
        client = wait_for_server(state_dir, restarted)
        health = client.healthz()
        if job_id not in health["recovered"]:
            fail(f"restart did not recover the job: {health['recovered']}")
        # An identical submission while it is re-running must coalesce
        # onto the recovered job, not start a second engine run.
        again = client.submit(FULL_REQUEST)
        if again["id"] != job_id or not again["coalesced"]:
            fail(f"resubmission did not coalesce: {again['id'][:12]}...")
        final = client.wait(job_id, timeout_s=240)
        if final["state"] != "done":
            fail(f"recovered job finished {final['state']}")
        if not final["resumed"]:
            fail("recovered job did not resume from its journal")
        if len(final["resumed"]) < checkpointed:
            fail(
                f"resumed only {final['resumed']} despite "
                f"{checkpointed} checkpoints"
            )
        if set(final["result"]["results"]) != set(list_workloads("Cactus")):
            fail("resumed run is missing workloads")
        engine_runs = final["result"]["run_profile"]["counters"].get(
            "engine.runs"
        )
        if engine_runs != 1.0:
            fail(f"resumed run profile shows engine.runs={engine_runs}")
        log(
            f"resume OK: restart re-ran the job, skipped "
            f"{len(final['resumed'])} journaled workloads"
        )
    finally:
        if restarted.poll() is None:
            code = stop_server(restarted)
            if code != 0:
                fail(f"restarted server exited {code}, want 0")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--state-dir",
        default=os.environ.get("SMOKE_STATE_DIR"),
        help="service state dir (kept for CI artifacts; default: temp)",
    )
    args = parser.parse_args()
    state_dir = pathlib.Path(
        args.state_dir or tempfile.mkdtemp(prefix="repro-service-smoke-")
    )
    state_dir.mkdir(parents=True, exist_ok=True)
    log(f"state dir: {state_dir}")

    process = start_server(state_dir, "server.log")
    try:
        client = wait_for_server(state_dir, process)
        job_id = phase_coalescing(client)
        phase_events(client, state_dir, job_id)
        phase_differential(client, job_id)
        phase_drain_and_resume(state_dir, process)
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
    log("all phases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
