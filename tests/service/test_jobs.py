"""JobManager: coalesced execution, persistence, recovery, differential.

These tests run the real engine on the fastest Cactus workloads (DCG,
NST: a few hundredths of a second each at laptop scale), so the suite
exercises the full submit → engine → persisted-result path, not mocks.
"""

import threading

import pytest

from repro.core.config import LAPTOP_SCALE
from repro.core.engine import CharacterizationEngine
from repro.core.serialize import suite_run_report_to_dict
from repro.gpu.device import device_by_name
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_INTERRUPTED,
    JobManager,
)
from repro.service.quota import QuotaConfig, QuotaExceeded
from repro.service.schemas import ValidationError

FAST_REQUEST = {"workloads": ["DCG"], "device": "RTX 3080"}


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault(
        "quota", QuotaConfig(capacity=1024.0, refill_per_s=1024.0)
    )
    return JobManager(state_dir=tmp_path / "state", **kwargs)


class TestSubmission:
    def test_submit_runs_to_done(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        record, coalesced = manager.submit(FAST_REQUEST, client="t")
        assert not coalesced
        manager.wait(record.id, timeout=60)
        assert record.state == JOB_DONE
        assert record.error is None
        assert set(record.result["results"]) == {"DCG"}
        # one engine execution, visible in the run profile
        counters = record.result["run_profile"]["counters"]
        assert counters["engine.runs"] == 1.0
        # the run populated the service's shared result cache, and the
        # aggregate (rebuilt via CacheStats.from_dict) reports it
        cache = manager.stats()["cache"]
        assert cache["stores"] >= 1
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_validation_error_propagates(self, tmp_path):
        manager = _manager(tmp_path)
        with pytest.raises(ValidationError):
            manager.submit({"workloads": ["NOPE"]}, client="t")

    def test_quota_exhaustion_raises(self, tmp_path):
        manager = _manager(
            tmp_path, quota=QuotaConfig(capacity=1.0, refill_per_s=0.0)
        )
        manager.submit(FAST_REQUEST, client="t")
        with pytest.raises(QuotaExceeded):
            manager.submit(FAST_REQUEST, client="t")
        # other clients have their own bucket
        manager.submit(FAST_REQUEST, client="other")

    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        """THE acceptance property: N concurrent identical submissions
        -> one job id, one engine execution."""
        manager = _manager(tmp_path)
        manager.start()
        n = 8
        barrier = threading.Barrier(n)
        outcomes = []
        lock = threading.Lock()

        def submit():
            barrier.wait()
            record, coalesced = manager.submit(FAST_REQUEST, client="t")
            with lock:
                outcomes.append((record.id, coalesced))

        pool = [threading.Thread(target=submit) for _ in range(n)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert len({job_id for job_id, _ in outcomes}) == 1
        assert sum(1 for _, c in outcomes if not c) == 1
        job_id = outcomes[0][0]
        record = manager.wait(job_id, timeout=60)
        assert record.state == JOB_DONE
        assert record.subscribers == n
        # service-level proof ...
        stats = manager.stats()
        assert stats["engine_runs"]["started"] == 1
        assert stats["engine_runs"]["completed"] == 1
        assert stats["coalesce"]["submissions"] == n
        assert stats["coalesce"]["coalesced"] == n - 1
        # ... and engine-level proof inside the job's own run profile
        counters = record.result["run_profile"]["counters"]
        assert counters["engine.runs"] == 1.0

    def test_done_job_serves_later_identical_submission(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        first, _ = manager.submit(FAST_REQUEST, client="t")
        manager.wait(first.id, timeout=60)
        again, coalesced = manager.submit(FAST_REQUEST, client="t")
        assert coalesced
        assert again is first
        assert manager.stats()["engine_runs"]["started"] == 1

    def test_different_requests_do_not_coalesce(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        a, _ = manager.submit(FAST_REQUEST, client="t")
        b, _ = manager.submit(
            {"workloads": ["NST"], "device": "RTX 3080"}, client="t"
        )
        assert a.id != b.id
        assert manager.wait(a.id, timeout=60).state == JOB_DONE
        assert manager.wait(b.id, timeout=60).state == JOB_DONE
        assert manager.stats()["engine_runs"]["started"] == 2


class TestDifferential:
    def test_service_result_bit_identical_to_run_suite(self, tmp_path):
        """The service is a transport, not a transform: its stored
        result must equal a direct run_suite serialization exactly."""
        manager = _manager(tmp_path)
        manager.start()
        record, _ = manager.submit(
            {"workloads": ["DCG", "NST"], "device": "RTX 3080"}, client="t"
        )
        manager.wait(record.id, timeout=120)
        assert record.state == JOB_DONE

        engine = CharacterizationEngine(device=device_by_name("RTX 3080"))
        report = engine.run_suite(
            ["Cactus"], preset=LAPTOP_SCALE, workloads=["DCG", "NST"]
        )
        expected = suite_run_report_to_dict(report)
        # Characterizations must match bit-for-bit; run_profile carries
        # wall-clock timings and is excluded by construction.
        assert record.result["results"] == expected["results"]
        assert record.result["failures"] == expected["failures"]
        assert record.result["fallback_reason"] == expected["fallback_reason"]


class TestFailureAndRecovery:
    def test_failed_job_records_error_and_readmits(
        self, tmp_path, monkeypatch
    ):
        manager = _manager(tmp_path)
        manager.start()

        def boom(request, job_id):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(manager, "_engine_for", boom)
        record, _ = manager.submit(FAST_REQUEST, client="t")
        manager.wait(record.id, timeout=30)
        assert record.state == JOB_FAILED
        assert "engine exploded" in record.error
        assert manager.stats()["engine_runs"]["failed"] == 1

        # a failed record must not poison its key: resubmission
        # re-admits a fresh attempt under the same id
        monkeypatch.undo()
        fresh, coalesced = manager.submit(FAST_REQUEST, client="t")
        assert not coalesced
        assert fresh is not record
        assert fresh.id == record.id
        manager.wait(fresh.id, timeout=60)
        assert fresh.state == JOB_DONE

    def test_drain_interrupts_queued_jobs(self, tmp_path):
        manager = _manager(tmp_path, workers=1)
        # workers never started: the job stays queued
        record, _ = manager.submit(FAST_REQUEST, client="t")
        interrupted = manager.drain(grace_s=0.0)
        assert interrupted == [record.id]
        assert record.state == JOB_INTERRUPTED
        assert record.done_event.is_set()
        with pytest.raises(RuntimeError):
            manager.submit(FAST_REQUEST, client="t")

    def test_restart_recovers_and_completes_interrupted_job(self, tmp_path):
        first = _manager(tmp_path, workers=1)
        record, _ = first.submit(FAST_REQUEST, client="t")
        first.drain(grace_s=0.0)

        second = _manager(tmp_path)
        second.start()
        assert second.stats()["recovered"] == [record.id]
        recovered = second.wait(record.id, timeout=60)
        assert recovered is not None
        assert recovered.state == JOB_DONE
        assert recovered.client == "t"
        assert recovered.request == record.request

    def test_restart_keeps_done_results(self, tmp_path):
        first = _manager(tmp_path)
        first.start()
        record, _ = first.submit(FAST_REQUEST, client="t")
        first.wait(record.id, timeout=60)
        first.drain(grace_s=2.0)

        second = _manager(tmp_path)
        second.start()
        assert second.stats()["recovered"] == []
        loaded = second.get(record.id)
        assert loaded.state == JOB_DONE
        assert loaded.result == record.result
        # and an identical submission coalesces straight onto it
        again, coalesced = second.submit(FAST_REQUEST, client="t")
        assert coalesced and again is loaded
        assert second.stats()["engine_runs"]["started"] == 0


class TestQueries:
    def test_wait_unknown_job_returns_none(self, tmp_path):
        manager = _manager(tmp_path)
        assert manager.wait("nope", timeout=0.1) is None

    def test_jobs_listing_sorted_by_submission(self, tmp_path):
        manager = _manager(tmp_path)
        a, _ = manager.submit(FAST_REQUEST, client="t")
        b, _ = manager.submit(
            {"workloads": ["NST"], "device": "RTX 3080"}, client="t"
        )
        assert [r.id for r in manager.jobs()] == [a.id, b.id]

    def test_similar_over_completed_jobs(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        record, _ = manager.submit(
            {"workloads": ["DCG", "NST"], "device": "RTX 3080"}, client="t"
        )
        manager.wait(record.id, timeout=120)
        kernel = record.result["results"]["DCG"]["profile"]["kernels"][0]
        payload = manager.similar(f"DCG:{kernel['name']}", k=3)
        assert payload["corpus_size"] > 3
        assert len(payload["neighbors"]) == 3
        for neighbor in payload["neighbors"]:
            assert neighbor["key"] != f"DCG:{kernel['name']}"
            assert neighbor["distance"] >= 0

    def test_similar_error_contract(self, tmp_path):
        manager = _manager(tmp_path)
        with pytest.raises(ValueError):
            manager.similar("anything")  # empty corpus
        manager.start()
        record, _ = manager.submit(FAST_REQUEST, client="t")
        manager.wait(record.id, timeout=60)
        with pytest.raises(KeyError):
            manager.similar("DCG:no_such_kernel")
        with pytest.raises(ValueError):
            manager.similar("DCG:no_such_kernel", k=0)
