"""Single-flight coalescer: atomicity and reuse policy."""

import threading

from repro.service.coalesce import Coalescer


class TestCoalescer:
    def test_first_admits_rest_attach(self):
        coalescer = Coalescer()
        record, coalesced = coalescer.admit("k", lambda: {"n": 1})
        assert not coalesced
        again, coalesced = coalescer.admit("k", lambda: {"n": 2})
        assert coalesced
        assert again is record
        stats = coalescer.stats.as_dict()
        assert stats == {"submissions": 2, "coalesced": 1, "admitted": 1}

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = Coalescer()
        a, _ = coalescer.admit("a", dict)
        b, _ = coalescer.admit("b", dict)
        assert a is not b
        assert len(coalescer) == 2

    def test_non_reusable_record_is_replaced(self):
        coalescer = Coalescer(reusable=lambda r: r["state"] != "failed")
        first, _ = coalescer.admit("k", lambda: {"state": "failed"})
        second, coalesced = coalescer.admit("k", lambda: {"state": "queued"})
        assert not coalesced
        assert second is not first
        assert coalescer.get("k") is second
        # a reusable record then absorbs the next submission
        third, coalesced = coalescer.admit("k", lambda: {"state": "nope"})
        assert coalesced and third is second

    def test_put_installs_without_counting(self):
        coalescer = Coalescer()
        coalescer.put("k", {"recovered": True})
        assert coalescer.stats.submissions == 0
        record, coalesced = coalescer.admit("k", dict)
        assert coalesced
        assert record == {"recovered": True}

    def test_concurrent_submissions_admit_exactly_once(self):
        """N racing submitters of one key -> one factory call, one
        admitted, N-1 coalesced — the service's core guarantee."""
        coalescer = Coalescer()
        threads_n = 16
        barrier = threading.Barrier(threads_n)
        factory_calls = []
        results = []
        lock = threading.Lock()

        def factory():
            factory_calls.append(1)
            return {"owner": threading.get_ident()}

        def submit():
            barrier.wait()
            record, coalesced = coalescer.admit("k", factory)
            with lock:
                results.append((id(record), coalesced))

        pool = [threading.Thread(target=submit) for _ in range(threads_n)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(factory_calls) == 1
        assert len({record_id for record_id, _ in results}) == 1
        assert sum(1 for _, c in results if not c) == 1
        stats = coalescer.stats
        assert stats.submissions == threads_n
        assert stats.admitted == 1
        assert stats.coalesced == threads_n - 1
