"""HTTP edge tests: an in-process server on an ephemeral port.

The asyncio server runs on a background thread; the stdlib
:class:`ServiceClient` talks to it over real sockets from the test
thread, so request parsing, routing, streaming and error mapping are
all exercised end-to-end (without the process-level concerns the CI
smoke covers: signals, restart, environment).
"""

import asyncio
import json
import threading

import pytest

from repro.service import (
    JobManager,
    QuotaConfig,
    ReproService,
    ServiceClient,
    ServiceError,
)

FAST_REQUEST = {"workloads": ["DCG"], "device": "RTX 3080"}


class ServerHandle:
    def __init__(self, service, manager, client):
        self.service = service
        self.manager = manager
        self.client = client


@pytest.fixture
def serve(tmp_path):
    """Factory fixture: boot a server thread, yield a connected client."""
    handles = []

    def boot(**manager_kwargs) -> ServerHandle:
        manager_kwargs.setdefault("workers", 2)
        manager_kwargs.setdefault(
            "quota", QuotaConfig(capacity=1024.0, refill_per_s=1024.0)
        )
        manager = JobManager(
            state_dir=tmp_path / "state", **manager_kwargs
        )
        service = ReproService(manager, port=0, drain_grace_s=2.0)
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(service.start())
            started.set()
            loop.run_until_complete(
                service.serve_forever(install_signals=False)
            )
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10), "server failed to start"
        client = ServiceClient(
            port=service.port, client_id="pytest", timeout=30.0
        )
        handle = ServerHandle(service, manager, client)
        handles.append((handle, loop, thread))
        return handle

    yield boot
    for handle, loop, thread in handles:
        loop.call_soon_threadsafe(handle.service.request_shutdown)
        thread.join(timeout=15)
        assert not thread.is_alive(), "server thread failed to drain"


class TestLifecycle:
    def test_discovery_file_matches_bound_port(self, serve, tmp_path):
        handle = serve()
        payload = json.loads(
            (tmp_path / "state" / "server.json").read_text()
        )
        assert payload["port"] == handle.service.port
        assert handle.service.port != 0  # ephemeral port was resolved

    def test_healthz(self, serve):
        handle = serve()
        payload = handle.client.healthz()
        assert payload["status"] == "ok"
        assert payload["draining"] is False
        assert payload["coalesce"] == {
            "submissions": 0, "coalesced": 0, "admitted": 0,
        }


class TestJobsApi:
    def test_submit_wait_result(self, serve):
        handle = serve()
        accepted = handle.client.submit(FAST_REQUEST)
        assert accepted["state"] in ("queued", "running")
        assert accepted["coalesced"] is False
        final = handle.client.wait(accepted["id"], timeout_s=60)
        assert final["state"] == "done"
        assert set(final["result"]["results"]) == {"DCG"}
        assert (
            final["result"]["run_profile"]["counters"]["engine.runs"] == 1.0
        )
        # ?result=0 strips the payload but keeps the status
        slim = handle.client.job(accepted["id"], include_result=False)
        assert slim["state"] == "done"
        assert "result" not in slim

    def test_duplicate_submissions_share_one_job(self, serve):
        handle = serve()
        n = 6
        responses = []
        lock = threading.Lock()

        def post():
            response = handle.client.submit(FAST_REQUEST)
            with lock:
                responses.append(response)

        pool = [threading.Thread(target=post) for _ in range(n)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        ids = {r["id"] for r in responses}
        assert len(ids) == 1
        assert sum(1 for r in responses if not r["coalesced"]) == 1
        final = handle.client.wait(ids.pop(), timeout_s=60)
        assert final["state"] == "done"
        assert final["subscribers"] == n
        health = handle.client.healthz()
        assert health["engine_runs"]["started"] == 1
        assert health["coalesce"]["submissions"] == n
        assert (
            final["result"]["run_profile"]["counters"]["engine.runs"] == 1.0
        )

    def test_jobs_listing(self, serve):
        handle = serve()
        accepted = handle.client.submit(FAST_REQUEST)
        listed = handle.client.jobs()
        assert [job["id"] for job in listed] == [accepted["id"]]
        assert "result" not in listed[0]  # summaries only

    def test_event_stream_equals_on_disk_log(self, serve):
        handle = serve()
        accepted = handle.client.submit(FAST_REQUEST)
        streamed = handle.client.events(accepted["id"])
        assert streamed, "no events streamed"
        on_disk = [
            json.loads(line)
            for line in handle.manager.events_path(accepted["id"])
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        assert streamed == on_disk

    def test_validation_error_is_400_with_details(self, serve):
        handle = serve()
        status, payload = handle.client.submit_raw(
            {"kind": "banana", "preset": "galactic"}
        )
        assert status == 400
        assert payload["error"] == "invalid request"
        assert len(payload["details"]) == 2

    def test_malformed_json_is_400(self, serve):
        handle = serve()
        status, payload = handle.client.submit_raw("not json at all")
        # the string *is* valid JSON, but not an object
        assert status == 400

    def test_quota_exhaustion_is_429_with_retry_after(self, serve):
        handle = serve(quota=QuotaConfig(capacity=1.0, refill_per_s=0.25))
        handle.client.submit(FAST_REQUEST)
        with pytest.raises(ServiceError) as excinfo:
            handle.client.submit(FAST_REQUEST)
        assert excinfo.value.status == 429
        assert excinfo.value.payload["retry_after_s"] > 0

    def test_unknown_job_is_404(self, serve):
        handle = serve()
        with pytest.raises(ServiceError) as excinfo:
            handle.client.job("no-such-job")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            handle.client.events("no-such-job")
        assert excinfo.value.status == 404

    def test_unknown_route_and_bad_method(self, serve):
        handle = serve()
        status, _ = handle.client._request("GET", "/v1/nope")
        assert status == 404
        status, _ = handle.client._request("DELETE", "/v1/jobs")
        assert status == 405


class TestCatalogApi:
    def test_devices(self, serve):
        handle = serve()
        devices = handle.client.devices()
        assert any(d["name"] == "RTX 3080" for d in devices)
        assert all("peak_gips" in d for d in devices)

    def test_workloads(self, serve):
        handle = serve()
        suites = handle.client.workloads()
        assert "Cactus" in suites
        cactus = {entry["abbr"] for entry in suites["Cactus"]}
        assert {"DCG", "NST", "GMS"} <= cactus

    def test_similar_end_to_end(self, serve):
        handle = serve()
        accepted = handle.client.submit(FAST_REQUEST)
        final = handle.client.wait(accepted["id"], timeout_s=60)
        kernel = final["result"]["results"]["DCG"]["profile"]["kernels"][0]
        payload = handle.client.similar(f"DCG:{kernel['name']}", k=2)
        assert len(payload["neighbors"]) == 2
        with pytest.raises(ServiceError) as excinfo:
            handle.client.similar("DCG:definitely_not_a_kernel")
        assert excinfo.value.status == 404
        status, _ = handle.client._request("GET", "/v1/similar")
        assert status == 400
