"""Admission-control invariants: token bucket and fair queue.

The two properties the service's correctness rests on, pinned with
hypothesis:

* a :class:`TokenBucket` never over-admits — over any window, admits
  <= capacity + rate * elapsed, no matter how requests interleave and
  no matter how many threads hammer the bucket concurrently;
* a :class:`FairQueue` never reorders one client's submissions, and
  rotates fairly across clients.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.quota import (
    ClientQuotas,
    FairQueue,
    QuotaConfig,
    QuotaExceeded,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- token bucket ------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 1.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 2.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 0.5s * 2/s = 1 token
        assert bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_matches_refill_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 4.0, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after_s() == pytest.approx(0.25)

    def test_zero_refill_never_recovers(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.0, clock=clock)
        assert bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()
        assert bucket.retry_after_s() == float("inf")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1, -1.0)
        with pytest.raises(ValueError):
            TokenBucket(1, 1.0).try_acquire(0)

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        rate=st.floats(min_value=0.0, max_value=50.0),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),  # dt before try
                st.integers(min_value=1, max_value=10),  # tries at that t
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_over_admits(self, capacity, rate, steps):
        """admitted <= capacity + rate * elapsed over ANY interleaving."""
        clock = FakeClock()
        bucket = TokenBucket(capacity, rate, clock=clock)
        admitted = 0
        for dt, tries in steps:
            clock.advance(dt)
            for _ in range(tries):
                if bucket.try_acquire():
                    admitted += 1
        # 1e-6 absorbs float refill accumulation across steps.
        assert admitted <= capacity + rate * clock.now + 1e-6

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        threads=st.integers(min_value=2, max_value=8),
        tries_per_thread=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_over_admits_concurrently(
        self, capacity, threads, tries_per_thread
    ):
        """A frozen-clock burst from N threads admits <= capacity."""
        clock = FakeClock()  # never advanced: zero refill during burst
        bucket = TokenBucket(capacity, 1000.0, clock=clock)
        admitted = []
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            count = 0
            for _ in range(tries_per_thread):
                if bucket.try_acquire():
                    count += 1
            admitted.append(count)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert sum(admitted) <= capacity


# -- client quotas -----------------------------------------------------
class TestClientQuotas:
    def test_buckets_are_per_client(self):
        clock = FakeClock()
        quotas = ClientQuotas(
            QuotaConfig(capacity=1, refill_per_s=0.0), clock=clock
        )
        quotas.admit("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit("alice")
        assert excinfo.value.client == "alice"
        quotas.admit("bob")  # untouched bucket

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuotaConfig(capacity=0)
        with pytest.raises(ValueError):
            QuotaConfig(refill_per_s=-1)


# -- fair queue --------------------------------------------------------
class TestFairQueue:
    def test_round_robin_across_clients(self):
        queue = FairQueue()
        for item in ("a1", "a2", "a3"):
            queue.push("alice", item)
        queue.push("bob", "b1")
        order = [queue.pop(timeout=0)[1] for _ in range(4)]
        # bob's single job is not starved behind alice's backlog
        assert order == ["a1", "b1", "a2", "a3"]

    def test_pop_returns_none_when_closed_and_empty(self):
        queue = FairQueue()
        queue.push("alice", 1)
        queue.close()
        assert queue.pop(timeout=0) == ("alice", 1)
        assert queue.pop(timeout=0) is None

    def test_push_after_close_raises(self):
        queue = FairQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.push("alice", 1)

    def test_close_wakes_blocked_pop(self):
        queue = FairQueue()
        result = []
        thread = threading.Thread(
            target=lambda: result.append(queue.pop(timeout=5))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert result == [None]

    def test_pending_and_len(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.pending("a") == 2
        assert queue.pending("missing") == 0

    @given(
        pushes=st.lists(
            st.tuples(
                st.sampled_from(["alice", "bob", "carol"]),
                st.integers(),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_per_client_fifo_preserved(self, pushes):
        """Whatever the interleaving, each client's items pop in
        submission order, and nothing is lost or invented."""
        queue = FairQueue()
        for client, item in pushes:
            queue.push(client, item)
        popped = []
        while True:
            entry = queue.pop(timeout=0)
            if entry is None:
                break
            popped.append(entry)
        assert len(popped) == len(pushes)
        for client in {c for c, _ in pushes}:
            pushed_order = [i for c, i in pushes if c == client]
            popped_order = [i for c, i in popped if c == client]
            assert popped_order == pushed_order
