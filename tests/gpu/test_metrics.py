"""Tests for the Table IV metric records."""

import pytest

from repro.gpu.metrics import (
    METRIC_DESCRIPTIONS,
    PRIMARY_METRICS,
    SECONDARY_METRICS,
    KernelMetrics,
    metric_table,
)


def make(**kwargs):
    defaults = dict(
        name="k", duration_s=1.0, warp_insts=1e9, dram_transactions=1e6
    )
    defaults.update(kwargs)
    return KernelMetrics(**defaults)


class TestRooflineCoordinates:
    def test_gips(self):
        assert make(duration_s=0.5, warp_insts=1e9).gips == pytest.approx(2.0)

    def test_instruction_intensity(self):
        metrics = make(warp_insts=4e6, dram_transactions=2e6)
        assert metrics.instruction_intensity == pytest.approx(2.0)

    def test_zero_transactions_clamped(self):
        metrics = make(warp_insts=100.0, dram_transactions=0.0)
        assert metrics.instruction_intensity == pytest.approx(100.0)


class TestValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration_s"):
            make(duration_s=0.0)

    def test_rejects_nonpositive_insts(self):
        with pytest.raises(ValueError, match="warp_insts"):
            make(warp_insts=0.0)

    def test_rejects_negative_transactions(self):
        with pytest.raises(ValueError):
            make(dram_transactions=-1.0)

    def test_rejects_zero_invocations(self):
        with pytest.raises(ValueError):
            make(invocations=0)


class TestAccessors:
    def test_metric_lookup(self):
        metrics = make(l1_hit_rate=0.25)
        assert metrics.metric("l1_hit_rate") == 0.25
        assert metrics.metric("gips") == metrics.gips
        assert (
            metrics.metric("instruction_intensity")
            == metrics.instruction_intensity
        )

    def test_metric_rejects_non_numeric(self):
        with pytest.raises((KeyError, AttributeError)):
            make().metric("name")

    def test_as_dict_contains_everything(self):
        data = make().as_dict()
        for metric in PRIMARY_METRICS + SECONDARY_METRICS:
            assert metric in data
        assert "duration_s" in data and "invocations" in data

    def test_descriptions_cover_all_metrics(self):
        for metric in PRIMARY_METRICS + SECONDARY_METRICS:
            assert metric in METRIC_DESCRIPTIONS

    def test_metric_table_matches_paper_rows(self):
        rows = metric_table()
        assert len(rows) == 12  # Table IV rows (L1/L2 share one)
        names = [name for name, _ in rows]
        assert "L1/L2 hit rate" in names
        assert "memory_stall" in names
