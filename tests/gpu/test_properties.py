"""Property-based tests on the GPU model (hypothesis).

These check the invariants that every roofline figure in the paper
relies on, across the whole space of plausible kernels.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GPUSimulator,
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
    RTX_3080,
)


@st.composite
def kernels(draw):
    fp32 = draw(st.floats(0.0, 0.7))
    ld_st = draw(st.floats(0.0, min(0.6, 0.95 - fp32)))
    branch = draw(st.floats(0.0, min(0.2, 0.99 - fp32 - ld_st)))
    sync = draw(st.floats(0.0, min(0.1, 1.0 - fp32 - ld_st - branch)))
    mix = InstructionMix(fp32=fp32, ld_st=ld_st, branch=branch, sync=sync)
    memory = MemoryFootprint(
        bytes_read=draw(st.floats(0.0, 1e9)),
        bytes_written=draw(st.floats(0.0, 1e8)),
        reuse_factor=draw(st.floats(1.0, 64.0)),
        l1_locality=draw(st.floats(0.0, 1.0)),
        coalescence=draw(st.floats(0.05, 1.0)),
    )
    return KernelCharacteristics(
        name="prop",
        grid_blocks=draw(st.integers(1, 200_000)),
        threads_per_block=draw(st.sampled_from([32, 64, 128, 256, 512, 1024])),
        warp_insts=draw(st.floats(1e3, 1e11)),
        mix=mix,
        memory=memory,
        ilp=draw(st.floats(1.0, 8.0)),
        mlp=draw(st.floats(1.0, 16.0)),
    )


SIM = GPUSimulator()


@given(kernels())
@settings(max_examples=200, deadline=None)
def test_achieved_gips_respects_both_roofs(kernel):
    metrics = SIM.timing_model.run(kernel)
    assert metrics.gips <= RTX_3080.peak_gips * (1 + 1e-9)
    memory_roof = metrics.instruction_intensity * RTX_3080.peak_gtxn_per_s
    assert metrics.gips <= memory_roof * (1 + 1e-6)


@given(kernels())
@settings(max_examples=200, deadline=None)
def test_metrics_are_finite_and_in_range(kernel):
    m = SIM.timing_model.run(kernel)
    assert math.isfinite(m.duration_s) and m.duration_s > 0
    assert math.isfinite(m.gips) and m.gips > 0
    assert 0.0 <= m.l1_hit_rate <= 1.0
    assert 0.0 <= m.l2_hit_rate <= 1.0
    assert 0.0 <= m.sm_efficiency <= 1.0
    assert 0.0 <= m.warp_occupancy <= RTX_3080.max_warps_per_sm + 1e-9
    assert 0.0 <= m.sp_utilization <= 1.0
    assert 0.0 <= m.ld_st_utilization <= 1.0
    stalls = m.execution_stall + m.pipe_stall + m.sync_stall + m.memory_stall
    assert 0.0 <= stalls <= 1.0 + 1e-9


@given(kernels(), st.floats(1.5, 10.0))
@settings(max_examples=100, deadline=None)
def test_more_work_on_a_full_machine_is_never_faster(kernel, factor):
    """Once the grid already fills the machine, scaling the work up can
    only slow the kernel down (cache cliffs make it superlinear, fill
    effects cannot make it sublinear)."""
    from repro.gpu import compute_occupancy

    base_occ = compute_occupancy(RTX_3080, kernel)
    if base_occ.sm_efficiency < 1.0:
        return  # partially filled machines may speed up with more work
    base = SIM.timing_model.run(kernel)
    bigger = SIM.timing_model.run(kernel.scaled(factor))
    assert bigger.duration_s >= base.duration_s * 0.999


@given(kernels())
@settings(max_examples=100, deadline=None)
def test_dram_traffic_never_below_compulsory(kernel):
    result = SIM.timing_model.cache_model.run(kernel)
    compulsory_txn = (
        kernel.memory.unique_bytes / RTX_3080.dram_transaction_bytes
    )
    assert result.dram_transactions >= compulsory_txn * 0.999
