"""Tests for the SM occupancy model."""

import pytest

from repro.gpu import (
    KernelCharacteristics,
    MemoryFootprint,
    RTX_3080,
    compute_occupancy,
)


def kernel(grid_blocks, threads_per_block):
    return KernelCharacteristics(
        name="k",
        grid_blocks=grid_blocks,
        threads_per_block=threads_per_block,
        warp_insts=1e6,
        memory=MemoryFootprint(bytes_read=1e6),
    )


class TestFullGrids:
    def test_large_grid_reaches_full_occupancy(self):
        # 256 threads = 8 warps/block; 6 blocks/SM = 48 warps = device max.
        result = compute_occupancy(RTX_3080, kernel(68 * 6 * 4, 256))
        assert result.active_warps_per_sm == 48
        assert result.avg_active_warps == pytest.approx(48.0)
        assert result.sm_efficiency == pytest.approx(1.0)

    def test_block_limit_caps_small_blocks(self):
        # 32-thread blocks: 1 warp each, capped at 16 blocks/SM -> 16 warps.
        result = compute_occupancy(RTX_3080, kernel(68 * 16, 32))
        assert result.active_warps_per_sm == 16

    def test_fat_blocks_limit_occupancy(self):
        # 1024 threads = 32 warps; only 1 block fits (48 // 32 = 1).
        result = compute_occupancy(RTX_3080, kernel(68, 1024))
        assert result.active_warps_per_sm == 32


class TestTailEffects:
    def test_tiny_grid_low_sm_efficiency(self):
        result = compute_occupancy(RTX_3080, kernel(2, 128))
        assert result.sm_efficiency == pytest.approx(2 / 68)
        assert result.waves == 1

    def test_partial_last_wave_reduces_efficiency(self):
        # One full wave plus a 1-block tail.
        blocks_per_wave = 6 * 68  # 8-warp blocks, 6 per SM
        result = compute_occupancy(RTX_3080, kernel(blocks_per_wave + 1, 256))
        assert result.waves == 2
        assert result.sm_efficiency < 1.0
        assert result.avg_active_warps < 48.0

    def test_more_waves_amortize_tail(self):
        blocks_per_wave = 6 * 68
        few = compute_occupancy(RTX_3080, kernel(blocks_per_wave + 1, 256))
        many = compute_occupancy(RTX_3080, kernel(10 * blocks_per_wave + 1, 256))
        assert many.sm_efficiency > few.sm_efficiency


class TestMonotonicity:
    def test_sm_efficiency_bounded(self):
        for blocks in (1, 3, 67, 68, 100, 409, 5000):
            result = compute_occupancy(RTX_3080, kernel(blocks, 256))
            assert 0.0 < result.sm_efficiency <= 1.0

    def test_avg_warps_never_exceeds_per_sm_limit(self):
        for blocks in (1, 10, 1000, 100000):
            for threads in (32, 64, 256, 512, 1024):
                result = compute_occupancy(RTX_3080, kernel(blocks, threads))
                assert result.avg_active_warps <= result.active_warps_per_sm + 1e-9
