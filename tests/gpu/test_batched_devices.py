"""Differential guards for the batched device-axis simulator.

The whole value of :func:`repro.gpu.batched.simulate_devices` rests on
one claim: the (D, K) broadcast evaluation is **bit-for-bit identical**
to D independent scalar :meth:`GPUSimulator.run_stream` walks.  These
tests pin that claim across every zoo device, every pinned Cactus
workload, the simulator's option ablations, and (via hypothesis)
randomly perturbed device specs — any float-level divergence in any
:class:`KernelMetrics` field is a failure, not a tolerance question.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LAPTOP_SCALE
from repro.gpu import (
    DEVICE_ZOO,
    RTX_3080,
    V100,
    GPUSimulator,
    SimulationOptions,
    simulate_devices,
)
from repro.gpu.batched import batch_kernel_metrics
from repro.gpu.simulator import TimingOptions
from repro.workloads import get_workload, list_workloads

ZOO = list(DEVICE_ZOO.values())


def scalar_metrics(launches, device, options=None):
    sim = GPUSimulator(device, options=options or SimulationOptions())
    return sim.run_stream(launches)


def assert_streams_identical(batched, scalar, context=""):
    assert len(batched) == len(scalar), context
    for i, (b, s) in enumerate(zip(batched, scalar)):
        for f in dataclasses.fields(s):
            bv, sv = getattr(b, f.name), getattr(s, f.name)
            assert bv == sv, (
                f"{context} launch {i} field {f.name}: "
                f"batched={bv!r} scalar={sv!r}"
            )


@pytest.fixture(scope="module")
def cactus_streams():
    """Every pinned Cactus workload's laptop-preset launch stream."""
    streams = {}
    for abbr in list_workloads("Cactus"):
        workload = get_workload(
            abbr,
            scale=LAPTOP_SCALE.for_workload(abbr),
            seed=LAPTOP_SCALE.seed,
        )
        streams[abbr] = list(workload.launch_stream())
    return streams


class TestBatchedEqualsScalar:
    def test_every_zoo_device_every_cactus_workload(self, cactus_streams):
        """The headline differential: 10 workloads x 8 devices."""
        for abbr, stream in cactus_streams.items():
            batched = simulate_devices(stream, ZOO)
            for device, per_device in zip(ZOO, batched):
                assert_streams_identical(
                    per_device,
                    scalar_metrics(stream, device),
                    context=f"{abbr} on {device.name}",
                )

    @pytest.mark.parametrize(
        "options",
        [
            SimulationOptions(model_caches=False),
            SimulationOptions(
                timing=TimingOptions(
                    dram_efficiency=0.5, model_latency=False
                )
            ),
            SimulationOptions(
                timing=TimingOptions(model_launch_overhead=False)
            ),
        ],
        ids=["no-caches", "half-dram-no-latency", "no-overhead"],
    )
    def test_option_ablations(self, cactus_streams, options):
        """Every simulator switch takes the same branch in both paths."""
        stream = cactus_streams["GST"]
        batched = simulate_devices(stream, ZOO, options=options)
        for device, per_device in zip(ZOO, batched):
            assert_streams_identical(
                per_device,
                scalar_metrics(stream, device, options),
                context=f"GST[{options!r}] on {device.name}",
            )

    def test_single_device_reduces_to_scalar_path(self, cactus_streams):
        """N=1 delegates to GPUSimulator itself — zero-risk fast path."""
        stream = cactus_streams["GRU"]
        for device in ZOO:
            (only,) = simulate_devices(stream, [device])
            assert_streams_identical(
                only, scalar_metrics(stream, device), device.name
            )

    def test_repeated_launches_share_one_record(self, cactus_streams):
        """Equal kernels map to one KernelMetrics object per device —
        the object-identity contract aggregate_launches groups by."""
        stream = cactus_streams["DCG"]
        assert len(stream) > len({ln.kernel for ln in stream})
        batched = simulate_devices(stream, [RTX_3080, V100])
        for per_device in batched:
            by_kernel = {}
            for launch, record in zip(stream, per_device):
                seen = by_kernel.setdefault(launch.kernel, record)
                assert seen is record

    def test_rejects_empty_and_duplicate_devices(self, cactus_streams):
        stream = cactus_streams["GST"]
        with pytest.raises(ValueError):
            simulate_devices(stream, [])
        with pytest.raises(ValueError):
            simulate_devices(stream, [RTX_3080, RTX_3080])

    def test_batch_kernel_metrics_orders_by_device_then_kernel(
        self, cactus_streams
    ):
        kernels = sorted(
            {ln.kernel for ln in cactus_streams["GMS"]},
            key=lambda k: k.name,
        )
        table = batch_kernel_metrics(kernels, ZOO)
        assert len(table) == len(ZOO)
        for row in table:
            assert [m.name for m in row] == [k.name for k in kernels]


device_perturbations = st.fixed_dictionaries(
    {},
    optional={
        "num_sms": st.integers(1, 256),
        "warp_schedulers_per_sm": st.integers(1, 8),
        "clock_ghz": st.floats(0.2, 3.5),
        "dram_bandwidth_gbs": st.floats(10.0, 4000.0),
        "l2_bytes": st.integers(256 * 1024, 128 * 1024 * 1024),
        "l1_bytes_per_sm": st.integers(16 * 1024, 512 * 1024),
        "max_warps_per_sm": st.integers(8, 64),
        "max_blocks_per_sm": st.integers(1, 32),
        "alu_latency_cycles": st.floats(2.0, 20.0),
        "l1_latency_cycles": st.floats(10.0, 80.0),
        "l2_latency_cycles": st.floats(80.0, 400.0),
        "dram_latency_cycles": st.floats(200.0, 900.0),
        "kernel_launch_overhead_s": st.floats(0.0, 1e-4),
    },
)


class TestBatchedProperties:
    @given(overrides=st.lists(device_perturbations, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_random_device_specs_stay_bit_exact(self, overrides):
        """Any plausible DeviceSpec, not just the curated zoo."""
        stream = self._stream()
        devices = [
            RTX_3080.with_overrides(name=f"perturbed-{i}", **kwargs)
            for i, kwargs in enumerate(overrides)
        ]
        batched = simulate_devices(stream, devices)
        for device, per_device in zip(devices, batched):
            assert_streams_identical(
                per_device,
                scalar_metrics(stream, device),
                context=device.name,
            )

    @staticmethod
    def _stream():
        workload = get_workload("GST", scale=0.01, seed=3)
        return list(workload.launch_stream())
