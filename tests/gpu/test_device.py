"""Tests for the device specifications (Table II constants)."""

import pytest

from repro.gpu import A100, DEVICE_PRESETS, EDGE_GPU, RTX_3080, RTX_3090, DeviceSpec


class TestRTX3080PaperConstants:
    """The paper derives its roofline from these exact numbers."""

    def test_peak_gips_matches_paper(self):
        # 68 SMs x 4 schedulers x 1 warp inst/cycle x 1.9 GHz = 516.8
        assert RTX_3080.peak_gips == pytest.approx(516.8)

    def test_peak_transaction_rate_matches_paper(self):
        # 760.3 GB/s / 32 B = 23.76 GTXN/s (paper rounds to 23.75)
        assert RTX_3080.peak_gtxn_per_s == pytest.approx(23.76, abs=0.01)

    def test_roofline_elbow_matches_paper(self):
        # elbow at ~21.76 warp insts per transaction
        assert RTX_3080.roofline_elbow == pytest.approx(21.76, abs=0.02)

    def test_sm_count(self):
        assert RTX_3080.num_sms == 68

    def test_l2_capacity(self):
        assert RTX_3080.l2_bytes == 5 * 1024 * 1024


class TestDeviceSpecValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError, match="num_sms"):
            RTX_3080.with_overrides(num_sms=0)

    def test_rejects_negative_clock(self):
        with pytest.raises(ValueError, match="clock_ghz"):
            RTX_3080.with_overrides(clock_ghz=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="dram_bandwidth_gbs"):
            RTX_3080.with_overrides(dram_bandwidth_gbs=0.0)

    def test_with_overrides_returns_new_spec(self):
        faster = RTX_3080.with_overrides(clock_ghz=2.0)
        assert faster.clock_ghz == 2.0
        assert RTX_3080.clock_ghz == 1.9
        assert faster.num_sms == RTX_3080.num_sms


class TestDevicePresets:
    def test_presets_registered(self):
        for spec in (RTX_3080, RTX_3090, A100, EDGE_GPU):
            assert DEVICE_PRESETS[spec.name] is spec

    def test_presets_ordering_by_bandwidth(self):
        assert (
            EDGE_GPU.dram_bandwidth_gbs
            < RTX_3080.dram_bandwidth_gbs
            < RTX_3090.dram_bandwidth_gbs
            < A100.dram_bandwidth_gbs
        )

    def test_all_presets_have_positive_elbow(self):
        for spec in DEVICE_PRESETS.values():
            assert spec.roofline_elbow > 0

    def test_derived_quantities_consistent(self):
        for spec in DEVICE_PRESETS.values():
            assert spec.roofline_elbow == pytest.approx(
                spec.peak_gips / spec.peak_gtxn_per_s
            )
            assert spec.max_threads_per_sm == spec.max_warps_per_sm * 32

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RTX_3080.num_sms = 100  # type: ignore[misc]
