"""Tests for the launch-stream simulator."""

import pytest

from repro.gpu import (
    EDGE_GPU,
    GPUSimulator,
    KernelCharacteristics,
    LaunchStream,
    MemoryFootprint,
    RTX_3080,
    SimulationOptions,
)


def make_kernel(name="k", insts=1e7):
    return KernelCharacteristics(
        name=name,
        grid_blocks=512,
        threads_per_block=256,
        warp_insts=insts,
        memory=MemoryFootprint(bytes_read=1e7),
    )


class TestSimulator:
    def test_run_preserves_order_and_length(self):
        stream = LaunchStream()
        for name in ("a", "b", "a", "c"):
            stream.launch(make_kernel(name))
        records = GPUSimulator().run(stream)
        assert [r.name for r in records] == ["a", "b", "a", "c"]

    def test_memoizes_identical_kernels(self):
        simulator = GPUSimulator()
        kernel = make_kernel()
        first = simulator.run_kernel(kernel)
        second = simulator.run_kernel(make_kernel())
        assert first is second
        assert len(simulator._memo) == 1

    def test_different_kernels_not_shared(self):
        simulator = GPUSimulator()
        simulator.run_kernel(make_kernel("a"))
        simulator.run_kernel(make_kernel("b"))
        assert len(simulator._memo) == 2

    def test_device_matters(self):
        big = GPUSimulator(RTX_3080).run_kernel(make_kernel())
        small = GPUSimulator(EDGE_GPU).run_kernel(make_kernel())
        assert small.duration_s > big.duration_s

    def test_cache_ablation_changes_results(self):
        kernel = KernelCharacteristics(
            name="reuse",
            grid_blocks=512,
            threads_per_block=256,
            warp_insts=1e7,
            memory=MemoryFootprint(
                bytes_read=1e6, reuse_factor=16.0, l1_locality=0.9
            ),
        )
        with_caches = GPUSimulator().run_kernel(kernel)
        without = GPUSimulator(
            options=SimulationOptions(model_caches=False)
        ).run_kernel(kernel)
        assert without.dram_transactions > 5 * with_caches.dram_transactions
        assert without.l1_hit_rate == 0.0
        assert without.l2_hit_rate == 0.0

    def test_empty_stream_runs(self):
        assert GPUSimulator().run(LaunchStream()) == []


class TestSimulationOptionsDefaults:
    def test_timing_default_does_not_alias(self):
        # Regression: `timing` used a shared default TimingOptions()
        # instance; with default_factory every options object owns its
        # own (equal but distinct) TimingOptions.
        a = SimulationOptions()
        b = SimulationOptions()
        assert a.timing == b.timing
        assert a.timing is not b.timing

    def test_equality_unaffected_by_factory(self):
        assert SimulationOptions() == SimulationOptions()
        assert SimulationOptions() != SimulationOptions(model_caches=False)


class TestSimulatorPersistentCache:
    def test_metrics_reused_across_simulator_instances(self, tmp_path):
        from repro.core.cache import ResultCache

        kernel = make_kernel()
        first = GPUSimulator(
            cache=ResultCache(cache_dir=tmp_path)
        ).run_kernel(kernel)

        warm_cache = ResultCache(cache_dir=tmp_path)
        second = GPUSimulator(cache=warm_cache).run_kernel(kernel)
        assert first == second
        assert warm_cache.stats.disk_hits == 1
        assert warm_cache.stats.stores == 0

    def test_cached_and_uncached_results_identical(self, tmp_path):
        from repro.core.cache import ResultCache

        kernel = make_kernel()
        plain = GPUSimulator().run_kernel(kernel)
        cached = GPUSimulator(
            cache=ResultCache(cache_dir=tmp_path)
        ).run_kernel(kernel)
        assert plain == cached
