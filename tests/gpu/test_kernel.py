"""Tests for kernel descriptions and launch streams."""

import pytest

from repro.gpu import (
    InstructionMix,
    KernelCharacteristics,
    KernelLaunch,
    LaunchStream,
    MemoryFootprint,
)


def make_kernel(name="k", **kwargs):
    defaults = dict(
        grid_blocks=64,
        threads_per_block=256,
        warp_insts=1e6,
        memory=MemoryFootprint(bytes_read=1e6),
    )
    defaults.update(kwargs)
    return KernelCharacteristics(name=name, **defaults)


class TestInstructionMix:
    def test_other_fraction_complements(self):
        mix = InstructionMix(fp32=0.5, ld_st=0.2, branch=0.1, sync=0.05)
        assert mix.other == pytest.approx(0.15)

    def test_rejects_sum_above_one(self):
        with pytest.raises(ValueError, match="sum"):
            InstructionMix(fp32=0.6, ld_st=0.5, branch=0.0, sync=0.0)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            InstructionMix(fp32=-0.1)

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            InstructionMix(ld_st=1.5)


class TestMemoryFootprint:
    def test_unique_and_total_bytes(self):
        fp = MemoryFootprint(bytes_read=100.0, bytes_written=50.0, reuse_factor=3.0)
        assert fp.unique_bytes == 150.0
        assert fp.total_access_bytes == 450.0

    def test_working_set_defaults_to_unique(self):
        fp = MemoryFootprint(bytes_read=100.0, bytes_written=20.0)
        assert fp.effective_working_set == 120.0

    def test_explicit_working_set(self):
        fp = MemoryFootprint(bytes_read=100.0, working_set_bytes=40.0)
        assert fp.effective_working_set == 40.0

    def test_rejects_reuse_below_one(self):
        with pytest.raises(ValueError, match="reuse_factor"):
            MemoryFootprint(bytes_read=1.0, reuse_factor=0.5)

    def test_rejects_zero_coalescence(self):
        with pytest.raises(ValueError, match="coalescence"):
            MemoryFootprint(bytes_read=1.0, coalescence=0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            MemoryFootprint(bytes_read=-1.0)


class TestKernelCharacteristics:
    def test_warp_geometry(self):
        kernel = make_kernel(grid_blocks=10, threads_per_block=96)
        assert kernel.warps_per_block == 3
        assert kernel.total_warps == 30

    def test_insts_per_warp(self):
        kernel = make_kernel(grid_blocks=4, threads_per_block=32, warp_insts=400.0)
        assert kernel.warp_insts_per_warp == pytest.approx(100.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            make_kernel(name="")

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError, match="threads_per_block"):
            make_kernel(threads_per_block=2048)

    def test_rejects_nonpositive_insts(self):
        with pytest.raises(ValueError, match="warp_insts"):
            make_kernel(warp_insts=0)

    def test_rejects_ilp_below_one(self):
        with pytest.raises(ValueError, match="ilp"):
            make_kernel(ilp=0.5)

    def test_scaled_preserves_structure(self):
        kernel = make_kernel(
            warp_insts=1e6,
            memory=MemoryFootprint(bytes_read=1e6, bytes_written=2e5),
        )
        half = kernel.scaled(0.5)
        assert half.warp_insts == pytest.approx(5e5)
        assert half.memory.bytes_read == pytest.approx(5e5)
        assert half.memory.bytes_written == pytest.approx(1e5)
        assert half.name == kernel.name
        assert half.mix == kernel.mix

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            make_kernel().scaled(0.0)

    def test_hashable_for_memoization(self):
        a = make_kernel()
        b = make_kernel()
        assert a == b
        assert hash(a) == hash(b)


class TestLaunchStream:
    def test_launch_appends(self):
        stream = LaunchStream()
        stream.launch(make_kernel("a"))
        stream.launch(make_kernel("b"))
        stream.launch(make_kernel("a"))
        assert len(stream) == 3
        assert stream[0].name == "a"

    def test_kernel_names_deduplicated_in_order(self):
        stream = LaunchStream()
        for name in ("x", "y", "x", "z", "y"):
            stream.launch(make_kernel(name))
        assert stream.kernel_names == ["x", "y", "z"]

    def test_total_warp_insts(self):
        stream = LaunchStream()
        stream.launch(make_kernel("a", warp_insts=100.0))
        stream.launch(make_kernel("b", warp_insts=250.0))
        assert stream.total_warp_insts == pytest.approx(350.0)

    def test_extend_and_iterate(self):
        stream = LaunchStream()
        extra = [KernelLaunch(kernel=make_kernel("c")) for _ in range(3)]
        stream.extend(extra)
        assert [launch.name for launch in stream] == ["c", "c", "c"]

    def test_phase_label_carried(self):
        stream = LaunchStream()
        launch = stream.launch(make_kernel("a"), phase="forward")
        assert launch.phase == "forward"
