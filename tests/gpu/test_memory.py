"""Tests for the analytical cache model."""

import pytest

from repro.gpu import (
    CacheModel,
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
    RTX_3080,
)

MIB = 1024 * 1024


def kernel_with(memory, grid_blocks=1024, threads=256):
    return KernelCharacteristics(
        name="k",
        grid_blocks=grid_blocks,
        threads_per_block=threads,
        warp_insts=1e6,
        mix=InstructionMix(),
        memory=memory,
    )


@pytest.fixture
def model():
    return CacheModel(RTX_3080)


class TestCompulsoryTraffic:
    def test_no_reuse_means_no_hits(self, model):
        result = model.run(
            kernel_with(MemoryFootprint(bytes_read=100 * MIB, reuse_factor=1.0))
        )
        assert result.l1_hit_rate == pytest.approx(0.0)
        assert result.l2_hit_rate == pytest.approx(0.0)

    def test_dram_traffic_at_least_compulsory(self, model):
        footprint = MemoryFootprint(
            bytes_read=64 * MIB, bytes_written=16 * MIB, reuse_factor=10.0
        )
        result = model.run(kernel_with(footprint))
        assert result.dram_transactions * 32 >= footprint.unique_bytes - 1e-6

    def test_zero_traffic_kernel(self, model):
        result = model.run(kernel_with(MemoryFootprint(bytes_read=0.0)))
        assert result.dram_transactions == 0.0
        assert result.dram_bytes == 0.0


class TestCapacityEffects:
    def test_small_working_set_hits_l2(self, model):
        # 1 MiB working set fits the 5 MiB L2; heavy reuse should hit.
        footprint = MemoryFootprint(
            bytes_read=1 * MIB, reuse_factor=20.0, l1_locality=0.0
        )
        result = model.run(kernel_with(footprint))
        assert result.l2_hit_rate > 0.9

    def test_huge_working_set_misses_l2(self, model):
        footprint = MemoryFootprint(
            bytes_read=2000 * MIB, reuse_factor=20.0, l1_locality=0.0
        )
        result = model.run(kernel_with(footprint))
        assert result.l2_hit_rate < 0.1

    def test_tiled_reuse_hits_l1(self, model):
        # Large total footprint but small per-block tiles with local reuse.
        footprint = MemoryFootprint(
            bytes_read=512 * MIB, reuse_factor=16.0, l1_locality=0.9
        )
        result = model.run(kernel_with(footprint, grid_blocks=65536))
        assert result.l1_hit_rate > 0.5

    def test_l2_hit_rate_monotone_in_working_set(self, model):
        """Shrinking the working set never hurts the L2 hit rate."""
        rates = []
        for ws_mib in (100, 20, 4, 1):
            footprint = MemoryFootprint(
                bytes_read=ws_mib * MIB, reuse_factor=8.0, l1_locality=0.0
            )
            rates.append(model.run(kernel_with(footprint)).l2_hit_rate)
        assert rates == sorted(rates)


class TestCoalescence:
    def test_poor_coalescence_inflates_transactions(self, model):
        base = MemoryFootprint(bytes_read=100 * MIB, coalescence=1.0)
        scattered = MemoryFootprint(bytes_read=100 * MIB, coalescence=0.25)
        txn_base = model.run(kernel_with(base)).dram_transactions
        txn_scattered = model.run(kernel_with(scattered)).dram_transactions
        assert txn_scattered == pytest.approx(4.0 * txn_base)


class TestReadWriteSplit:
    def test_read_share_preserved(self, model):
        footprint = MemoryFootprint(bytes_read=75 * MIB, bytes_written=25 * MIB)
        result = model.run(kernel_with(footprint))
        total = result.dram_read_bytes + result.dram_write_bytes
        assert result.dram_read_bytes / total == pytest.approx(0.75)

    def test_write_only_kernel(self, model):
        footprint = MemoryFootprint(bytes_read=0.0, bytes_written=10 * MIB)
        result = model.run(kernel_with(footprint))
        assert result.dram_read_bytes == pytest.approx(0.0)
        assert result.dram_write_bytes > 0
