"""Tests for the instruction-roofline timing model."""

import pytest

from repro.gpu import (
    GPUSimulator,
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
    RTX_3080,
    SimulationOptions,
)
from repro.gpu.timing import TimingModel, TimingOptions

MIB = 1024 * 1024


def compute_kernel(warp_insts=1e9):
    """A well-behaved compute-intensive kernel (GEMM-like)."""
    return KernelCharacteristics(
        name="compute",
        grid_blocks=8192,
        threads_per_block=256,
        warp_insts=warp_insts,
        mix=InstructionMix(fp32=0.6, ld_st=0.15, branch=0.02, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=128 * MIB, bytes_written=32 * MIB,
            reuse_factor=8.0, l1_locality=0.85,
        ),
        ilp=3.0,
        mlp=4.0,
    )


def memory_kernel():
    """A streaming memory-bound kernel (axpy-like)."""
    return KernelCharacteristics(
        name="memory",
        grid_blocks=8192,
        threads_per_block=256,
        warp_insts=2e8,
        mix=InstructionMix(fp32=0.2, ld_st=0.4, branch=0.02, sync=0.0),
        memory=MemoryFootprint(bytes_read=800 * MIB, bytes_written=400 * MIB),
        mlp=8.0,
    )


def tiny_kernel():
    """A launch far too small to fill the machine."""
    return KernelCharacteristics(
        name="tiny",
        grid_blocks=4,
        threads_per_block=128,
        warp_insts=4e4,
        memory=MemoryFootprint(bytes_read=2e5),
    )


@pytest.fixture
def model():
    return TimingModel(RTX_3080)


class TestRooflineBounds:
    """Achieved performance must respect both roofs — the core invariant
    behind every roofline figure in the paper (Figs. 4-7)."""

    @pytest.mark.parametrize(
        "kernel", [compute_kernel(), memory_kernel(), tiny_kernel()]
    )
    def test_gips_below_compute_roof(self, model, kernel):
        metrics = model.run(kernel)
        assert metrics.gips <= RTX_3080.peak_gips * (1 + 1e-9)

    @pytest.mark.parametrize(
        "kernel", [compute_kernel(), memory_kernel(), tiny_kernel()]
    )
    def test_gips_below_memory_roof(self, model, kernel):
        metrics = model.run(kernel)
        memory_roof = metrics.instruction_intensity * RTX_3080.peak_gtxn_per_s
        assert metrics.gips <= memory_roof * (1 + 1e-9)


class TestBoundClassification:
    def test_compute_kernel_near_compute_roof(self, model):
        metrics = model.run(compute_kernel())
        assert metrics.gips > 0.8 * RTX_3080.peak_gips
        assert metrics.instruction_intensity > RTX_3080.roofline_elbow

    def test_memory_kernel_on_memory_roof(self, model):
        metrics = model.run(memory_kernel())
        memory_roof = metrics.instruction_intensity * RTX_3080.peak_gtxn_per_s
        assert metrics.gips > 0.8 * memory_roof
        assert metrics.instruction_intensity < RTX_3080.roofline_elbow

    def test_memory_kernel_mostly_memory_stalled(self, model):
        metrics = model.run(memory_kernel())
        assert metrics.memory_stall > metrics.execution_stall
        assert metrics.memory_stall > metrics.sync_stall

    def test_tiny_kernel_is_slow(self, model):
        metrics = model.run(tiny_kernel())
        # Far below both roofs: latency/overhead-bound.
        assert metrics.gips < 0.05 * RTX_3080.peak_gips

    def test_bound_labels(self, model):
        from repro.gpu.memory import CacheModel
        from repro.gpu.occupancy import compute_occupancy

        cache = CacheModel(RTX_3080)
        for kernel, expected in [
            (compute_kernel(), "compute"),
            (memory_kernel(), "memory"),
        ]:
            breakdown = model.time(
                kernel, compute_occupancy(RTX_3080, kernel), cache.run(kernel)
            )
            assert breakdown.bound == expected


class TestStallDecomposition:
    @pytest.mark.parametrize(
        "kernel", [compute_kernel(), memory_kernel(), tiny_kernel()]
    )
    def test_stall_ratios_valid(self, model, kernel):
        m = model.run(kernel)
        stalls = [m.execution_stall, m.pipe_stall, m.sync_stall, m.memory_stall]
        assert all(0.0 <= s <= 1.0 for s in stalls)
        assert sum(stalls) <= 1.0 + 1e-9

    def test_sync_heavy_kernel_has_sync_stalls(self, model):
        kernel = KernelCharacteristics(
            name="sync_heavy",
            grid_blocks=1024,
            threads_per_block=256,
            warp_insts=1e8,
            mix=InstructionMix(fp32=0.2, ld_st=0.1, branch=0.05, sync=0.15),
            memory=MemoryFootprint(bytes_read=10 * MIB),
            ilp=1.0,
        )
        metrics = model.run(kernel)
        assert metrics.sync_stall > 0.05


class TestUtilizations:
    def test_fp32_heavy_kernel_high_sp_utilization(self, model):
        metrics = model.run(compute_kernel())
        assert metrics.sp_utilization > 0.5

    def test_memory_kernel_low_sp_utilization(self, model):
        metrics = model.run(memory_kernel())
        assert metrics.sp_utilization < 0.3

    def test_utilizations_bounded(self, model):
        for kernel in (compute_kernel(), memory_kernel(), tiny_kernel()):
            m = model.run(kernel)
            assert 0.0 <= m.sp_utilization <= 1.0
            assert 0.0 <= m.ld_st_utilization <= 1.0


class TestScalingBehaviour:
    def test_double_work_doubles_time_for_big_kernels(self, model):
        small = model.run(compute_kernel(warp_insts=1e9))
        large = model.run(compute_kernel(warp_insts=2e9))
        ratio = large.duration_s / small.duration_s
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_more_bandwidth_speeds_memory_kernel(self):
        fast_device = RTX_3080.with_overrides(dram_bandwidth_gbs=1520.6)
        base = TimingModel(RTX_3080).run(memory_kernel())
        fast = TimingModel(fast_device).run(memory_kernel())
        assert fast.duration_s < base.duration_s * 0.6

    def test_more_sms_speed_compute_kernel(self):
        fat_device = RTX_3080.with_overrides(num_sms=136)
        base = TimingModel(RTX_3080).run(compute_kernel())
        fat = TimingModel(fat_device).run(compute_kernel())
        assert fat.duration_s < base.duration_s * 0.6


class TestAblationOptions:
    def test_disable_launch_overhead(self):
        options = TimingOptions(model_launch_overhead=False)
        base = TimingModel(RTX_3080).run(tiny_kernel())
        ablated = TimingModel(RTX_3080, options=options).run(tiny_kernel())
        assert ablated.duration_s < base.duration_s

    def test_disable_latency_model(self):
        options = TimingOptions(model_latency=False)
        irregular = KernelCharacteristics(
            name="irregular",
            grid_blocks=256,
            threads_per_block=256,
            warp_insts=1e8,
            mix=InstructionMix(fp32=0.05, ld_st=0.35, branch=0.1),
            memory=MemoryFootprint(bytes_read=8 * MIB, coalescence=0.3),
            ilp=1.2,
            mlp=1.5,
        )
        base = TimingModel(RTX_3080).run(irregular)
        ablated = TimingModel(RTX_3080, options=options).run(irregular)
        assert ablated.duration_s <= base.duration_s

    def test_no_cache_simulation_option(self):
        sim_base = GPUSimulator()
        sim_nocache = GPUSimulator(options=SimulationOptions(model_caches=False))
        kernel = compute_kernel()
        base = sim_base.run_kernel(kernel)
        nocache = sim_nocache.run_kernel(kernel)
        assert nocache.dram_transactions > base.dram_transactions
        assert nocache.l1_hit_rate == 0.0

    def test_rejects_bad_dram_efficiency(self):
        with pytest.raises(ValueError, match="dram_efficiency"):
            TimingOptions(dram_efficiency=0.0)
