"""Tests for the CLI and the Markdown report generator."""

import pytest

from repro.cli import main
from repro.core import LAPTOP_SCALE, run_suite
from repro.core.report import generate_report


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Cactus (10):" in out
        assert "Rodinia (18):" in out
        assert "CactusExt (3):" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "GMS", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "kernels: 9" in out
        assert "nbnxn_kernel" in out

    def test_table1(self, capsys):
        assert main(["--preset", "laptop", "table1"]) == 0
        out = capsys.readouterr().out
        for abbr in ("GMS", "LGT"):
            assert abbr in out

    def test_trace(self, tmp_path, capsys):
        path = tmp_path / "gru.jsonl"
        assert main(["trace", "GRU", str(path), "--scale", "0.001"]) == 0
        assert path.exists()
        assert "launches" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_sweep(self, capsys):
        assert main(["--preset", "laptop", "sweep",
                     "--devices", "V100,H100",
                     "--workloads", "GST,DCG"]) == 0
        out = capsys.readouterr().out
        assert "## Device sweep" in out
        assert "Roofline elbows" in out
        assert "V100" in out and "H100" in out

    def test_sweep_to_file_all_devices(self, tmp_path, capsys):
        path = tmp_path / "sweep.md"
        assert main(["--preset", "laptop", "sweep", "--all-devices",
                     "--workloads", "GST",
                     "--output", str(path)]) == 0
        text = path.read_text()
        for name in ("EdgeGPU", "P100", "RTX 4090"):
            assert name in text

    def test_sweep_rejects_unknown_device(self, capsys):
        assert main(["sweep", "--devices", "TPUv4",
                     "--workloads", "GST"]) == 2
        assert "unknown device" in capsys.readouterr().err.lower()

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["--preset", "laptop", "report",
                     "--output", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# Cactus characterization report")
        assert "Table I" in text


class TestReportGenerator:
    @pytest.fixture(scope="class")
    def runs(self):
        cactus = run_suite(["Cactus"], preset=LAPTOP_SCALE)
        prt = run_suite(["Parboil", "Rodinia", "Tango"],
                        preset=LAPTOP_SCALE)
        return cactus, prt

    def test_cactus_only_report(self, runs):
        cactus, _ = runs
        text = generate_report(cactus)
        assert "## Table I" in text
        assert "## Aggregate roofline" in text
        assert "Observations" not in text

    def test_full_report_with_prt(self, runs):
        text = generate_report(*runs)
        assert "## PRT dominance (Fig. 2)" in text
        assert "## Clustering (Fig. 9)" in text
        assert "Observations:" in text

    def test_report_mentions_every_cactus_workload(self, runs):
        cactus, _ = runs
        text = generate_report(cactus)
        for abbr in ("GMS", "LMR", "LMC", "GST", "GRU",
                     "DCG", "NST", "RFL", "SPT", "LGT"):
            assert f"| {abbr} |" in text
