"""Unit and differential tests for the similarity-proxy tier.

The proxy's contract (see :mod:`repro.core.proxy`): off by default and
bit-exact when off, exact substitution at tolerance 0, work-rescaled
substitution within a positive tolerance, digest-deterministic audit
sampling with per-metric error bounds, and no writes to the exact-key
result cache ever.
"""

from dataclasses import fields, replace

import pytest

from repro.core.cache import ResultCache
from repro.core.proxy import (
    AUDITED_METRICS,
    ProxyBank,
    ProxyConfig,
    ProxyStats,
    ProxyTier,
    _audited_metric_names,
)
from repro.gpu import RTX_3080, GPUSimulator
from repro.gpu.device import DEVICE_ZOO
from repro.gpu.kernel import (
    KernelCharacteristics,
    KernelLaunch,
    MemoryFootprint,
)


def _kernel(name="k", blocks=128, insts=1.5e6, bytes_read=3.25e5):
    return KernelCharacteristics(
        name=name,
        grid_blocks=blocks,
        threads_per_block=256,
        warp_insts=insts,
        memory=MemoryFootprint(bytes_read=bytes_read),
    )


def _metrics_equal(a, b, skip=()):
    return all(
        getattr(a, f.name) == getattr(b, f.name)
        for f in fields(a)
        if f.name not in skip
    )


class TestConfig:
    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            ProxyConfig(tolerance=-0.1)

    def test_rejects_bad_audit_fraction(self):
        with pytest.raises(ValueError, match="audit_fraction"):
            ProxyConfig(tolerance=0.0, audit_fraction=1.5)

    def test_audited_metrics_cover_every_numeric_field(self):
        """AUDITED_METRICS must track KernelMetrics' numeric fields.

        If this fires, a field was added to (or removed from)
        KernelMetrics without updating AUDITED_METRICS — the audit
        error-bound table would silently stop covering it.
        """
        assert tuple(sorted(AUDITED_METRICS)) == tuple(
            sorted(_audited_metric_names())
        )


class TestStats:
    def test_merge_accumulates_and_takes_worst_error(self):
        a = ProxyStats(hits=2, misses=3, audits=1, error_max={"x": 0.1})
        b = ProxyStats(hits=1, misses=1, audits=0, error_max={"x": 0.3, "y": 0.2})
        a.merge(b)
        assert (a.hits, a.misses, a.audits) == (3, 4, 1)
        assert a.error_max == {"x": 0.3, "y": 0.2}
        assert a.as_dict()["error_max"] == {"x": 0.3, "y": 0.2}


class TestTierLookup:
    def test_empty_corpus_misses(self):
        tier = ProxyTier(ProxyConfig(tolerance=1.0))
        assert tier.lookup(_kernel()) is None
        assert tier.stats.misses == 1

    def test_exact_hit_at_tolerance_zero_is_bit_identical(self):
        tier = ProxyTier(ProxyConfig(tolerance=0.0, audit_fraction=0.0))
        donor = _kernel(name="donor")
        truth = GPUSimulator(RTX_3080).run_kernel(donor)
        tier.record(donor, truth)
        # A *structurally equal* kernel under a different name: every
        # timing-model input matches, so the proxy must return the
        # donor's numbers bit-for-bit, relabeled.
        twin = replace(donor, name="twin")
        hit = tier.lookup(twin)
        assert hit is not None
        assert hit.name == "twin"
        assert _metrics_equal(hit, truth, skip=("name", "tags", "invocations"))
        assert tier.stats.hits == 1

    def test_near_duplicate_misses_at_tolerance_zero(self):
        tier = ProxyTier(ProxyConfig(tolerance=0.0, audit_fraction=0.0))
        donor = _kernel()
        tier.record(donor, GPUSimulator(RTX_3080).run_kernel(donor))
        near = replace(donor, warp_insts=donor.warp_insts * 1.01)
        assert tier.lookup(near) is None
        assert tier.stats.misses == 1

    def test_near_hit_is_work_rescaled(self):
        tier = ProxyTier(ProxyConfig(tolerance=10.0, audit_fraction=0.0))
        donor = _kernel(name="donor")
        truth = GPUSimulator(RTX_3080).run_kernel(donor)
        tier.record(donor, truth)
        # Seed a second distinct kernel so the standardization fit has
        # spread (a single-item corpus standardizes everything to 0).
        other = _kernel(name="other", blocks=32, insts=4e5, bytes_read=1e5)
        tier.record(other, GPUSimulator(RTX_3080).run_kernel(other))
        query = donor.scaled(1.05, name="query")
        hit = tier.lookup(query)
        assert hit is not None
        ratio = query.warp_insts / truth.warp_insts
        assert hit.duration_s == pytest.approx(truth.duration_s * ratio)
        assert hit.warp_insts == query.warp_insts
        # Intensive quantities carry over unchanged.
        assert hit.l2_hit_rate == truth.l2_hit_rate
        assert hit.warp_occupancy == truth.warp_occupancy

    def test_beyond_tolerance_misses(self):
        tier = ProxyTier(ProxyConfig(tolerance=0.01, audit_fraction=0.0))
        tier.record(_kernel(), GPUSimulator(RTX_3080).run_kernel(_kernel()))
        far = _kernel(name="far", blocks=4096, insts=9e8, bytes_read=5e8)
        tier.record(far, GPUSimulator(RTX_3080).run_kernel(far))
        probe = _kernel(name="probe", blocks=512, insts=1e7, bytes_read=2e6)
        assert tier.lookup(probe) is None

    def test_record_is_idempotent_per_kernel(self):
        tier = ProxyTier(ProxyConfig(tolerance=0.0))
        kernel = _kernel()
        truth = GPUSimulator(RTX_3080).run_kernel(kernel)
        tier.record(kernel, truth)
        tier.record(kernel, truth)
        assert len(tier) == 1


class TestAuditing:
    def test_full_audit_scores_errors_and_returns_none(self):
        tier = ProxyTier(ProxyConfig(tolerance=10.0, audit_fraction=1.0))
        donor = _kernel(name="donor")
        tier.record(donor, GPUSimulator(RTX_3080).run_kernel(donor))
        other = _kernel(name="other", blocks=32, insts=4e5, bytes_read=1e5)
        tier.record(other, GPUSimulator(RTX_3080).run_kernel(other))
        query = donor.scaled(1.1, name="query")
        # Audited: the would-be hit is withheld (simulate it) ...
        assert tier.lookup(query) is None
        assert tier.stats.audits == 1
        assert tier.stats.hits == 0
        # ... and scoring happens when the ground truth arrives.  Only
        # nonzero errors are retained (error_max is a worst-case record).
        tier.record(query, GPUSimulator(RTX_3080).run_kernel(query))
        assert tier.stats.error_max
        assert set(tier.stats.error_max) <= set(AUDITED_METRICS)
        assert "duration_s" in tier.stats.error_max
        # Exact-by-construction fields of the adaptation have zero error.
        assert tier.stats.error_max.get("warp_insts", 0.0) == 0.0

    def test_audit_sampling_is_digest_deterministic(self):
        config = ProxyConfig(tolerance=10.0, audit_fraction=0.3)
        draws = []
        for trial in range(2):
            tier = ProxyTier(config)
            draws.append(
                [
                    tier._sample_audit(_kernel(name=f"k{i}", blocks=64 + i))
                    for i in range(50)
                ]
            )
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])


class TestSimulatorIntegration:
    def _stream(self):
        base = _kernel(name="bfs", blocks=100, insts=1e6, bytes_read=2e5)
        launches = [KernelLaunch(kernel=base)]
        # Near-duplicate frontier levels plus one unrelated kernel.
        for step in range(1, 20):
            launches.append(
                KernelLaunch(kernel=base.scaled(1.0 + 0.002 * step))
            )
        launches.append(KernelLaunch(kernel=_kernel(name="other", blocks=8)))
        return launches

    def _warm(self, tier):
        """Seed the corpus with the stream's first wave.

        Lookups within one run_stream call never see that call's own
        records (the corpus grows one simulate wave at a time), so
        tests replay against a tier warmed by an earlier wave.  The
        warm set is deliberately diverse — the standardization fit
        needs corpus-wide spread for distances to be meaningful.
        """
        sim = GPUSimulator(RTX_3080)
        base = self._stream()[0].kernel
        for kernel in (
            base,
            base.scaled(1.002),
            _kernel(name="other", blocks=8),
        ):
            tier.record(kernel, sim.run_kernel(kernel))

    def test_tolerance_zero_stream_is_bit_exact(self):
        stream = self._stream()
        plain = GPUSimulator(RTX_3080).run_stream(stream)
        tier = ProxyTier(ProxyConfig(tolerance=0.0, audit_fraction=0.0))
        proxied = GPUSimulator(RTX_3080, proxy=tier).run_stream(stream)
        assert len(plain) == len(proxied)
        for a, b in zip(plain, proxied):
            assert _metrics_equal(a, b)
        assert tier.stats.hits == 0

    def test_positive_tolerance_serves_near_duplicates(self):
        stream = self._stream()
        cache = ResultCache()
        tier = ProxyTier(ProxyConfig(tolerance=0.5, audit_fraction=0.0))
        self._warm(tier)
        sim = GPUSimulator(RTX_3080, cache=cache, proxy=tier)
        results = sim.run_stream(stream)
        assert len(results) == len(stream)
        assert tier.stats.hits > 0
        assert cache.stats.proxy_hits == tier.stats.hits
        assert "proxy hits" in cache.stats.render()

    def test_proxied_metrics_never_poison_the_cache(self):
        stream = self._stream()
        distinct = len({l.kernel for l in stream})
        cache = ResultCache()
        tier = ProxyTier(ProxyConfig(tolerance=0.5, audit_fraction=0.0))
        self._warm(tier)
        GPUSimulator(RTX_3080, cache=cache, proxy=tier).run_stream(stream)
        assert tier.stats.hits > 0
        # Every store is a ground-truth simulation; proxied kernels are
        # memoized only.  A second *uncached* proxy-off run over the
        # same cache must therefore recompute exactly the proxied ones
        # and agree bit-for-bit with a from-scratch simulation.
        assert cache.stats.stores == distinct - tier.stats.hits
        follow_up = GPUSimulator(RTX_3080, cache=cache)
        truth = follow_up.run_stream(stream)
        plain = GPUSimulator(RTX_3080).run_stream(stream)
        for a, b in zip(truth, plain):
            assert _metrics_equal(a, b)

    def test_exact_cache_hits_seed_the_corpus(self):
        stream = self._stream()
        cache = ResultCache()
        GPUSimulator(RTX_3080, cache=cache).run_stream(stream)
        tier = ProxyTier(ProxyConfig(tolerance=0.5, audit_fraction=0.0))
        GPUSimulator(RTX_3080, cache=cache, proxy=tier).run_stream(stream)
        # All distinct kernels came back as exact cache hits and were
        # replayed into the corpus; none were proxied or recomputed.
        assert len(tier) == len({l.kernel for l in stream})
        assert tier.stats.hits == 0


class TestBank:
    def test_one_tier_per_device(self):
        bank = ProxyBank(ProxyConfig(tolerance=0.1))
        devices = list(DEVICE_ZOO.values())[:3]
        tiers = [bank.tier(d) for d in devices]
        assert len({id(t) for t in tiers}) == 3
        assert bank.tier(devices[0]) is tiers[0]

    def test_stats_merge_across_tiers(self):
        bank = ProxyBank(ProxyConfig(tolerance=1.0))
        devices = list(DEVICE_ZOO.values())[:2]
        for device in devices:
            bank.tier(device).lookup(_kernel())  # empty-corpus miss
        assert bank.stats().misses == 2


class TestEngineThreading:
    def test_run_suite_with_proxy_tol_records_counters(self):
        from repro.core import run_suite

        report = run_suite(
            ["Cactus"], workloads=["GST"], proxy_tol=0.5
        )
        assert report.ok
        profile = report.run_profile
        lookups = profile.counter("proxy.hits") + profile.counter(
            "proxy.misses"
        )
        assert lookups > 0

    def test_run_suite_default_has_no_proxy_counters(self):
        from repro.core import run_suite

        report = run_suite(["Cactus"], workloads=["GST"])
        profile = report.run_profile
        assert profile.counter("proxy.hits") == 0.0
        assert profile.counter("proxy.misses") == 0.0
