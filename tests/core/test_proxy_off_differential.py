"""Proxy-off differential: importing the subsystem changes nothing.

This module is the CI gate for the proxy tier's headline guarantee:
**default off, bit-exact when off**.  With :mod:`repro.core.proxy` and
:mod:`repro.analysis.similarity` imported (as any engine run now
imports them), a run with no tolerance configured must produce
characterizations bit-for-bit identical to the plain pipeline — same
pinned stream digests, same metrics, same serialized characterization
payloads.

CI invokes this module by name (see ``.github/workflows/ci.yml``), so
keep it self-contained and fast (laptop preset).
"""

from dataclasses import fields

# Deliberate: the differential below must hold WITH the proxy subsystem
# imported — import side effects are part of what is being tested.
import repro.analysis.similarity  # noqa: F401
import repro.core.proxy  # noqa: F401
from repro.core import LAPTOP_SCALE, characterize, run_suite
from repro.core.serialize import characterization_to_dict
from repro.gpu import RTX_3080, GPUSimulator
from repro.gpu.digest import launch_stream_digest, stable_digest
from repro.profiler.profiler import Profiler
from repro.workloads.registry import get_workload

import json
from pathlib import Path

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "golden"
    / "fixtures"
    / "stream_digests.json"
)

WORKLOADS = ("GST", "GRU", "LMC")


def _pinned(abbr: str) -> dict:
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    return payload["presets"]["laptop"][abbr]


def _workload(abbr: str):
    return get_workload(abbr, scale=LAPTOP_SCALE.for_workload(abbr), seed=0)


def test_streams_match_pinned_digests_with_proxy_imported():
    for abbr in WORKLOADS:
        workload = _workload(abbr)
        stream = Profiler().prepare_stream(workload)
        reference = _pinned(abbr)
        assert len(stream) == reference["launches"]
        assert launch_stream_digest(stream) == reference["digest"]


def test_simulator_without_proxy_matches_explicit_none():
    workload = _workload("GST")
    stream = Profiler().prepare_stream(workload)
    default = GPUSimulator(RTX_3080).run_stream(stream)
    explicit = GPUSimulator(RTX_3080, proxy=None).run_stream(stream)
    for a, b in zip(default, explicit):
        for f in fields(a):
            assert getattr(a, f.name) == getattr(b, f.name)


def test_engine_run_with_proxy_disabled_is_bit_identical():
    """run_suite (proxy machinery threaded, tolerance None) must equal
    the plain characterize() path payload-for-payload."""
    report = run_suite(["Cactus"], workloads=list(WORKLOADS))
    for abbr in WORKLOADS:
        plain = characterize(_workload(abbr))
        engine_digest = stable_digest(
            characterization_to_dict(report[abbr])
        )
        plain_digest = stable_digest(characterization_to_dict(plain))
        assert engine_digest == plain_digest, (
            f"{abbr}: proxy-off engine run diverged from the plain "
            f"pipeline — the default path is no longer bit-exact"
        )
    # And no proxy activity was recorded anywhere in the run.
    profile = report.run_profile
    assert profile.counter("proxy.hits") == 0.0
    assert profile.counter("proxy.misses") == 0.0
    assert profile.counter("proxy.audits") == 0.0
