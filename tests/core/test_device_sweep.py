"""Cross-device consistency of the characterization pipeline."""

import pytest

from repro.core import characterize
from repro.gpu import A100, EDGE_GPU, RTX_3080
from repro.workloads import get_workload


class TestDeviceSweep:
    @pytest.fixture(scope="class")
    def gms(self):
        return {
            device.name: characterize(
                get_workload("GMS", scale=0.2), device=device
            )
            for device in (RTX_3080, A100, EDGE_GPU)
        }

    def test_kernel_menu_device_invariant(self, gms):
        """The device changes timings, never which kernels run."""
        menus = {
            name: {k.name for k in result.profile.kernels}
            for name, result in gms.items()
        }
        reference = menus[RTX_3080.name]
        assert all(menu == reference for menu in menus.values())

    def test_instruction_counts_device_invariant(self, gms):
        insts = {
            name: result.profile.total_warp_insts
            for name, result in gms.items()
        }
        reference = insts[RTX_3080.name]
        for value in insts.values():
            assert value == pytest.approx(reference)

    def test_durations_track_device_speed(self, gms):
        assert (
            gms[EDGE_GPU.name].profile.total_time_s
            > gms[RTX_3080.name].profile.total_time_s
        )

    def test_classification_uses_each_devices_elbow(self, gms):
        """Intensity is a workload property; the class label depends on
        the device's machine balance."""
        for device in (RTX_3080, A100, EDGE_GPU):
            result = gms[device.name]
            point = result.aggregate_point
            expected = (
                "compute"
                if point.intensity > device.roofline_elbow
                else "memory"
            )
            assert point.intensity_class == expected

    def test_elbow_ordering(self):
        # More bandwidth per FLOP -> elbow further left.
        assert A100.roofline_elbow < RTX_3080.roofline_elbow
