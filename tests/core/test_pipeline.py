"""Tests for the end-to-end pipeline (characterize / run_suite)."""

import pytest

from repro.core import (
    LAPTOP_SCALE,
    PAPER_SCALE,
    ScalePreset,
    characterize,
    run_suite,
)
from repro.workloads import get_workload


class TestScalePresets:
    def test_preset_routing(self):
        assert PAPER_SCALE.for_workload("GMS") == 1.0
        assert PAPER_SCALE.for_workload("GST") == 0.05
        assert PAPER_SCALE.for_workload("DCG") == 1.0
        assert PAPER_SCALE.for_workload("SGEMM") == 1.0

    def test_laptop_smaller_than_paper(self):
        for abbr in ("GMS", "GST", "DCG", "SGEMM"):
            assert LAPTOP_SCALE.for_workload(abbr) < PAPER_SCALE.for_workload(abbr)

    def test_custom_preset(self):
        preset = ScalePreset("x", molecular=0.2, graph=0.1, ml=0.3,
                             bottom_up=0.4)
        assert preset.for_workload("lmr") == 0.2


class TestCharacterize:
    def test_characterization_bundle(self):
        result = characterize(get_workload("GMS", scale=0.05))
        assert result.abbr == "GMS"
        assert result.table1.kernels_100 == 9
        assert len(result.kernel_points) == 9
        assert 1 <= len(result.dominant_points) <= 9
        assert result.cumulative_curve[0][0] == 1
        assert result.cumulative_curve[-1][1] <= 1.0 + 1e-9

    def test_dominant_sides_counts(self):
        result = characterize(get_workload("GMS", scale=0.05))
        compute, memory = result.dominant_sides
        assert compute + memory == len(result.dominant_points)


class TestRunSuite:
    def test_run_selected_workloads(self):
        result = run_suite(
            ["Cactus"], preset=LAPTOP_SCALE, workloads=["GMS", "GRU"]
        )
        assert len(result) == 2
        assert "GMS" in result and "gru" in result
        assert result["GMS"].profile.num_kernels == 9

    def test_suite_accessor(self):
        result = run_suite(
            ["Parboil"], preset=LAPTOP_SCALE, workloads=["SGEMM", "LBM"]
        )
        abbrs = {c.abbr for c in result.suite("Parboil")}
        assert abbrs == {"SGEMM", "LBM"}

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="no workloads"):
            run_suite(["Cactus"], workloads=["NOPE"])

    def test_profiles_helper(self):
        result = run_suite(
            ["Tango"], preset=LAPTOP_SCALE
        )
        assert len(result.profiles("Tango")) == 3
        assert len(result.profiles()) == 3
