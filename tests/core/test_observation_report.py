"""Unit tests for the ObservationReport plumbing (compare.py)."""

from repro.core.compare import Observation, ObservationReport


class TestObservationReport:
    def _report(self):
        return ObservationReport(
            observations=[
                Observation(1, "first claim", True, "evidence one"),
                Observation(2, "second claim", False, "evidence two"),
                Observation(3, "third claim", True, "evidence three"),
            ]
        )

    def test_pass_counting(self):
        report = self._report()
        assert report.passed == 2
        assert report.total == 3

    def test_render_marks_status(self):
        text = self._report().render()
        assert "Observations: 2/3 hold" in text
        assert "[PASS] #1 first claim" in text
        assert "[FAIL] #2 second claim" in text
        assert "evidence two" in text

    def test_render_orders_by_number(self):
        text = self._report().render()
        assert text.index("#1") < text.index("#2") < text.index("#3")
