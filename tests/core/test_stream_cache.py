"""Stream cache: lossless round trips, disjoint keys, schema safety."""

import pytest

from repro.core.cache import characterization_key
from repro.core.streamcache import (
    STREAM_CACHE_SCHEMA_VERSION,
    StreamCache,
    launches_from_payload,
    launches_to_payload,
    stream_key,
)
from repro.gpu.digest import launch_stream_digest
from repro.workloads import get_workload

IDENTITY = {
    "name": "Gromacs",
    "abbr": "GMS",
    "suite": "Cactus",
    "domain": "MD",
}


@pytest.fixture(scope="module")
def stream():
    return list(get_workload("GMS", scale=0.05, seed=7).launch_stream())


class TestRoundTrip:
    def test_payload_round_trip_is_lossless(self, stream):
        rebuilt = launches_from_payload(launches_to_payload(stream))
        assert rebuilt == stream
        # Bit-exactness in one shot: the content digest the result
        # cache keys on is computed from every float in the stream.
        assert launch_stream_digest(rebuilt) == launch_stream_digest(stream)

    def test_rebuilt_stream_shares_kernel_objects(self, stream):
        """Equal kernels deserialize to one object — the simulator's
        per-kernel memo and metric sharing rely on cheap equality."""
        rebuilt = launches_from_payload(launches_to_payload(stream))
        distinct = {id(ln.kernel) for ln in rebuilt}
        assert len(distinct) == len({ln.kernel for ln in stream})

    def test_disk_round_trip(self, stream, tmp_path):
        cache = StreamCache(cache_dir=tmp_path)
        key = stream_key(IDENTITY, 0.05, 7)
        assert cache.get(key) is None
        cache.put(key, stream)
        # A fresh handle (fresh process in real life) sees it.
        again = StreamCache(cache_dir=tmp_path).get(key)
        assert again == stream


class TestKeys:
    def test_key_varies_with_every_component(self):
        base = stream_key(IDENTITY, 0.05, 7, steady_state=True)
        assert base != stream_key(IDENTITY, 0.06, 7)
        assert base != stream_key(IDENTITY, 0.05, 8)
        assert base != stream_key(IDENTITY, 0.05, 7, steady_state=False)
        other = dict(IDENTITY, abbr="LMR")
        assert base != stream_key(other, 0.05, 7)

    def test_disjoint_from_characterization_keys(self, stream):
        """Stream keys can never collide with result-cache keys even in
        a shared backend — different digest tag and schema axis."""
        from repro.gpu.device import RTX_3080
        from repro.gpu.simulator import SimulationOptions

        skey = stream_key(IDENTITY, 0.05, 7)
        ckey = characterization_key(
            RTX_3080, SimulationOptions(), IDENTITY, stream
        )
        assert skey != ckey


class TestSchemaSafety:
    def test_schema_mismatch_is_a_miss(self, stream, tmp_path):
        cache = StreamCache(cache_dir=tmp_path)
        key = stream_key(IDENTITY, 0.05, 7)
        payload = launches_to_payload(stream)
        payload["schema"] = STREAM_CACHE_SCHEMA_VERSION + 1
        cache.backend.put(key, payload)
        assert cache.get(key) is None

    def test_corrupt_payload_is_a_miss(self, stream, tmp_path):
        cache = StreamCache(cache_dir=tmp_path)
        key = stream_key(IDENTITY, 0.05, 7)
        payload = launches_to_payload(stream)
        del payload["kernels"][0]["mix"]
        cache.backend.put(key, payload)
        assert cache.get(key) is None

    def test_from_payload_raises_on_bad_schema(self, stream):
        payload = launches_to_payload(stream)
        payload["schema"] = "banana"
        with pytest.raises(ValueError):
            launches_from_payload(payload)
