#!/usr/bin/env python3
"""Deep-dive into the ML training workloads (the paper's Fig. 7 story).

Profiles the five PyTorch-style training workloads and reports, per
model: the kernel menu size, the time concentration, and how its
dominant kernels split between the compute and memory sides of the
roofline — including which ones are pinned to the DRAM-bandwidth roof.

Usage::

    python examples/ml_training_analysis.py [scale]
"""

import sys

from repro.core import characterize
from repro.gpu import RTX_3080
from repro.workloads import get_workload

ML_WORKLOADS = ("DCG", "NST", "RFL", "SPT", "LGT")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"Profiling the five ML training workloads at scale {scale}...\n")

    for abbr in ML_WORKLOADS:
        workload = get_workload(abbr, scale=scale)
        result = characterize(workload)
        profile = result.profile
        compute, memory = result.dominant_sides

        print(f"=== {abbr}: {workload.name} ({workload.dataset})")
        print(f"  distinct kernels: {profile.num_kernels}   "
              f"for 70% of time: {len(result.dominant_points)}   "
              f"aggregate: {result.aggregate_point.intensity:.1f} insts/txn "
              f"({result.aggregate_point.intensity_class})")
        print(f"  dominant kernels: {compute} compute-side, "
              f"{memory} memory-side")

        near_roof = [
            p for p in result.dominant_points
            if not p.is_compute_intensive and p.distance_to_roof() > 0.6
        ]
        if near_roof:
            print("  pinned to the DRAM-bandwidth roof:")
            for point in near_roof:
                roof = point.intensity * RTX_3080.peak_gtxn_per_s
                print(f"    {point.label:<44} {point.gips:7.1f} GIPS "
                      f"({point.gips / roof:4.0%} of its memory roof)")
        top = profile.kernels[0]
        print(f"  top kernel: {top.name} "
              f"({top.total_time_s / profile.total_time_s:.1%} of time, "
              f"{top.invocations} invocations)\n")


if __name__ == "__main__":
    main()
