#!/usr/bin/env python3
"""Bring your own workload: model an application and characterize it.

Shows the extension path a downstream user takes: implement the
:class:`~repro.workloads.base.Workload` interface (emit a kernel launch
stream), then reuse the whole pipeline — profiler, Table-I statistics,
roofline, trace export — unchanged.

The example models a simple iterative Jacobi solver with a convergence
check: one streaming stencil kernel plus a reduction per sweep, a
residual norm readback every 8 sweeps.

Usage::

    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro.core import characterize
from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    LaunchStream,
    MemoryFootprint,
)
from repro.profiler import export_trace
from repro.workloads.base import Workload, WorkloadInfo


class JacobiSolver(Workload):
    """A 2D Jacobi iteration with periodic convergence checks."""

    repetitive = True

    def __init__(self, scale: float = 1.0, seed: int = 0,
                 grid: int = 4096, sweeps: int = 64) -> None:
        info = WorkloadInfo(
            name="Jacobi2D",
            abbr="JAC",
            suite="Custom",
            domain="HPC",
            description="Iterative 5-point Jacobi solver",
            dataset=f"{grid}x{grid} grid",
        )
        super().__init__(info, scale=scale, seed=seed)
        self.grid = max(256, int(grid * scale))
        self.sweeps = sweeps

    def launch_stream(self) -> LaunchStream:
        n = self.grid * self.grid
        sweep = KernelCharacteristics(
            name="jacobi_sweep_5pt",
            grid_blocks=max(1, n // 256),
            threads_per_block=256,
            warp_insts=n * 14.0 / 32.0,
            mix=InstructionMix(fp32=0.35, ld_st=0.40, branch=0.02),
            memory=MemoryFootprint(
                bytes_read=n * 4.0, bytes_written=n * 4.0,
                reuse_factor=5.0, l1_locality=0.7,
            ),
            mlp=8.0,
        )
        residual = KernelCharacteristics(
            name="residual_norm_reduce",
            grid_blocks=max(1, n // 512),
            threads_per_block=512,
            warp_insts=n * 3.0 / 32.0,
            mix=InstructionMix(fp32=0.30, ld_st=0.32, sync=0.08),
            memory=MemoryFootprint(bytes_read=n * 4.0, bytes_written=512.0),
            mlp=8.0,
        )
        stream = LaunchStream()
        for step in range(self.sweeps):
            stream.launch(sweep, phase=f"sweep{step}")
            if step % 8 == 7:
                stream.launch(residual, phase=f"sweep{step}")
        return stream


def main() -> None:
    workload = JacobiSolver(scale=0.5)
    result = characterize(workload)
    point = result.aggregate_point

    print(f"{workload.name} on a {workload.dataset}:")
    print(f"  kernels: {result.table1.kernels_100}, "
          f"70% of time in {result.table1.kernels_70}")
    print(f"  intensity {point.intensity:.2f} insts/txn -> "
          f"{point.intensity_class}-intensive, {point.gips:.1f} GIPS")

    # The trace-export extension: hand the stream to a trace-driven
    # simulator without re-running the model.
    path = Path(tempfile.mkdtemp()) / "jacobi.trace.jsonl"
    count = export_trace(workload.launch_stream(), path)
    print(f"  exported {count} launches to {path}")


if __name__ == "__main__":
    main()
