#!/usr/bin/env python3
"""Diff a workload's profile across two devices.

Profiles GMS on the RTX 3080 and the A100 and prints the per-kernel
speedup table: the compute-bound non-bonded kernel tracks the SM-count
ratio while the memory-bound PME kernels track the bandwidth ratio —
the per-kernel view behind the device-sweep ablation.

Usage::

    python examples/profile_diff.py [ABBR] [scale]
"""

import sys

from repro.gpu import A100, GPUSimulator, RTX_3080
from repro.profiler import Profiler, diff_profiles
from repro.workloads import get_workload


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "GMS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    profiles = {}
    for device in (RTX_3080, A100):
        profiler = Profiler(simulator=GPUSimulator(device))
        profiles[device.name] = profiler.profile(
            get_workload(abbr, scale=scale)
        )

    diff = diff_profiles(profiles[RTX_3080.name], profiles[A100.name])
    print(f"{abbr} at scale {scale}: {RTX_3080.name} -> {A100.name}\n")
    print(diff.render(top=12))
    print(f"\nbandwidth ratio: "
          f"{A100.dram_bandwidth_gbs / RTX_3080.dram_bandwidth_gbs:.2f}x, "
          f"peak-GIPS ratio: {A100.peak_gips / RTX_3080.peak_gips:.2f}x")
    regressions = diff.regressions()
    if regressions:
        print(f"regressions: {[d.name for d in regressions]}")


if __name__ == "__main__":
    main()
