#!/usr/bin/env python3
"""Quickstart: characterize one Cactus workload end to end.

Runs the Gromacs NPT workload (GMS) through the profiler on the
modelled RTX 3080, then prints its Table-I row, per-kernel time
distribution, and roofline classification — the full Section-V
treatment for one application, in a few lines of library code.

Usage::

    python examples/quickstart.py [scale]
"""

import sys

from repro.analysis.roofline import render_roofline_ascii
from repro.core import characterize
from repro.gpu import RTX_3080
from repro.workloads import get_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    workload = get_workload("GMS", scale=scale)
    print(f"Characterizing {workload.name} ({workload.dataset}) "
          f"at scale {scale} on {RTX_3080.name}...\n")

    result = characterize(workload)
    profile = result.profile

    print(f"Distinct kernels:        {result.table1.kernels_100}")
    print(f"Kernels for 70% of time: {result.table1.kernels_70}")
    print(f"Total warp instructions: {result.table1.total_warp_insts:.3e}")
    print(f"Aggregate intensity:     "
          f"{result.aggregate_point.intensity:.1f} insts/txn "
          f"({result.aggregate_point.intensity_class}-intensive; "
          f"elbow = {RTX_3080.roofline_elbow:.2f})")
    print(f"Aggregate performance:   {result.aggregate_point.gips:.1f} GIPS "
          f"(peak {RTX_3080.peak_gips:.1f})\n")

    print("Per-kernel GPU-time distribution:")
    for kernel in profile.kernels:
        share = kernel.total_time_s / profile.total_time_s
        bar = "#" * int(40 * share)
        print(f"  {kernel.name:<34} {share:6.1%} {bar}")

    print("\nRoofline (per kernel):")
    print(render_roofline_ascii(result.kernel_points))


if __name__ == "__main__":
    main()
