#!/usr/bin/env python3
"""Device sweep: re-characterize Cactus across the whole device zoo.

The paper's future work proposes evaluating Cactus across a broader
range of GPU platforms.  The sweep pipeline makes that one call:
``run_sweep`` generates each workload's launch stream exactly once,
evaluates the full device axis in a single batched broadcast pass
(:func:`repro.gpu.batched.simulate_devices`), and returns per-device
characterizations that are bit-for-bit identical to scalar runs.

The differential analysis then answers the platform question directly:
where each device's roofline elbow sits, which workloads flip between
memory- and compute-intensive as the machine balance changes, and
whether the dominant-kernel selection survives a platform change.

Usage::

    python examples/device_sweep.py
"""

from repro.analysis.sweep import analyze_sweep, render_sweep_markdown
from repro.core import run_sweep
from repro.gpu import DEVICE_ZOO

WORKLOADS = ("GMS", "LMR", "GST", "DCG", "SPT")


def main() -> None:
    devices = list(DEVICE_ZOO.values())
    report = run_sweep(devices, workloads=WORKLOADS, keep_going=True)

    # Compact intensity table: one row per device, one column per
    # workload, each cell the aggregate instruction intensity and which
    # side of *that device's* elbow it lands on.
    print(f"{'device':<10} {'elbow':>7}  "
          + "  ".join(f"{w:>12}" for w in WORKLOADS))
    for device in devices:
        cells = []
        for abbr in WORKLOADS:
            point = report.results[abbr][device.name].aggregate_point
            side = "C" if point.is_compute_intensive else "M"
            cells.append(f"{point.intensity:7.1f} {side}")
        print(f"{device.name:<10.10} {device.roofline_elbow:>7.2f}  "
              + "  ".join(f"{c:>12}" for c in cells))
    print("\nII in warp insts per 32B transaction; C/M = side of that "
          "device's elbow. A bandwidth-rich device (H100) pushes "
          "borderline workloads to the compute side.\n")

    # The full differential section the `repro sweep` command prints.
    analysis = analyze_sweep(report.results, report.devices)
    print(render_sweep_markdown(analysis))


if __name__ == "__main__":
    main()
