#!/usr/bin/env python3
"""Device sweep: re-characterize Cactus across GPU models.

The paper's future work proposes evaluating Cactus across a broader
range of GPU platforms.  The analytical substrate makes that a loop:
this example recharacterizes a Cactus subset on four device presets and
reports how the memory/compute classification shifts with the machine
balance (the elbow moves with bandwidth-to-compute ratio).

Usage::

    python examples/device_sweep.py
"""

from repro.core import characterize
from repro.gpu import DEVICE_PRESETS
from repro.workloads import get_workload

WORKLOADS = ("GMS", "LMR", "GST", "DCG", "SPT")


def main() -> None:
    print(f"{'device':<10} {'elbow':>7}  " +
          "  ".join(f"{w:>12}" for w in WORKLOADS))
    for name, device in DEVICE_PRESETS.items():
        cells = []
        for abbr in WORKLOADS:
            workload = get_workload(abbr, scale=0.25)
            result = characterize(workload, device=device)
            point = result.aggregate_point
            side = "C" if point.is_compute_intensive else "M"
            cells.append(f"{point.intensity:7.1f} {side}")
        print(f"{name:<10} {device.roofline_elbow:>7.2f}  " +
              "  ".join(f"{c:>12}" for c in cells))
    print("\nII in warp insts per 32B transaction; C/M = side of that "
          "device's elbow. A bandwidth-rich device (A100) pushes "
          "borderline workloads to the compute side.")


if __name__ == "__main__":
    main()
