#!/usr/bin/env python3
"""Compare Cactus against Parboil/Rodinia/Tango (the paper's thesis).

Runs both suites, prints Table I, the Fig. 2 dominance histogram for
the bottom-up suites, and the Observation 1-12 scoreboard.

Usage::

    python examples/compare_suites.py [--fast]
"""

import sys

from repro.analysis.distribution import dominance_histogram
from repro.core import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    check_observations,
    run_suite,
)


def main() -> None:
    preset = LAPTOP_SCALE if "--fast" in sys.argv else OBSERVATION_SCALE
    print(f"Running both suites at the '{preset.name}' scale preset "
          f"(this traces all 42 workloads)...\n")

    cactus = run_suite(["Cactus"], preset=preset)
    prt = run_suite(["Parboil", "Rodinia", "Tango"], preset=preset)

    print("Table I (Cactus):")
    header = (f"  {'abbr':<5} {'insts':>10} {'avg/kernel':>11} "
              f"{'kernels':>8} {'70% time':>9}")
    print(header)
    for characterization in cactus.suite("Cactus"):
        row = characterization.table1
        print(f"  {row.abbr:<5} {row.total_warp_insts:>10.2e} "
              f"{row.weighted_avg_insts_per_kernel:>11.2e} "
              f"{row.kernels_100:>8} {row.kernels_70:>9}")

    histogram = dominance_histogram(
        [c.profile for s in ("Parboil", "Rodinia", "Tango")
         for c in prt.suite(s)]
    )
    print("\nFig. 2 dominance histogram (PRT): kernels needed for 70% "
          f"of GPU time -> workload count: {histogram}")

    print("\n" + check_observations(cactus, prt).render())


if __name__ == "__main__":
    main()
