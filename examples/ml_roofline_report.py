#!/usr/bin/env python3
"""Render the ML roofline chart (Fig. 7) as ASCII art.

Profiles the five ML training workloads and draws all their kernels on
one instruction-roofline chart, then the dominant kernels only — the
two panels the paper uses to show that ML kernels spread across both
sides of the elbow while the dominant ones hug the memory roof.

Usage::

    python examples/ml_roofline_report.py [scale]
"""

import sys

from repro.analysis.roofline import render_roofline_ascii
from repro.core import characterize
from repro.workloads import get_workload

ML_WORKLOADS = ("DCG", "NST", "RFL", "SPT", "LGT")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    all_points = []
    dominant_points = []
    for abbr in ML_WORKLOADS:
        result = characterize(get_workload(abbr, scale=scale))
        all_points.extend(result.kernel_points)
        dominant_points.extend(result.dominant_points)

    print(f"Fig. 7a — all {len(all_points)} ML kernels:")
    print(render_roofline_ascii(all_points))
    print(f"\nFig. 7c — the {len(dominant_points)} dominant ML kernels:")
    print(render_roofline_ascii(dominant_points))


if __name__ == "__main__":
    main()
