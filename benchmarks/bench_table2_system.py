"""Table II + Section IV performance-model constants.

The measurement platform: RTX 3080, 68 SMs x 128 CUDA cores at
1.9 GHz, 10 GB at 760 GB/s, 5 MB L2 — and the roofline constants the
paper derives from them: 516.8 GIPS peak, 23.75 GTXN/s, elbow 21.76.
"""

import pytest

from repro.gpu import DEVICE_PRESETS, RTX_3080


def _system_table():
    lines = ["Table II — system setup (modelled):"]
    spec = RTX_3080
    lines.append(f"  GPU: {spec.name}, {spec.num_sms} SMs, "
                 f"{spec.warp_schedulers_per_sm} schedulers/SM @ "
                 f"{spec.clock_ghz} GHz")
    lines.append(f"  DRAM: {spec.dram_bytes / 2**30:.0f} GiB @ "
                 f"{spec.dram_bandwidth_gbs} GB/s, "
                 f"{spec.dram_transaction_bytes} B transactions")
    lines.append(f"  L2: {spec.l2_bytes / 2**20:.0f} MiB; "
                 f"L1: {spec.l1_bytes_per_sm // 1024} KiB/SM")
    lines.append(f"  peak: {spec.peak_gips:.1f} GIPS, "
                 f"{spec.peak_gtxn_per_s:.2f} GTXN/s, "
                 f"elbow {spec.roofline_elbow:.2f} insts/txn")
    lines.append(f"  presets available: {sorted(DEVICE_PRESETS)}")
    return "\n".join(lines)


def test_table2_system(benchmark, save_exhibit):
    table = benchmark(_system_table)
    save_exhibit("table2_system", table)

    assert RTX_3080.peak_gips == pytest.approx(516.8)
    assert RTX_3080.peak_gtxn_per_s == pytest.approx(23.76, abs=0.01)
    assert RTX_3080.roofline_elbow == pytest.approx(21.76, abs=0.02)
    assert RTX_3080.num_sms == 68
