"""Similarity-index benchmark: sublinear queries and proxy hit rates.

Two deterministic, count-gated experiments over the real Cactus kernel
corpus (distinct :class:`KernelCharacteristics` drawn from the suite's
launch streams, digest-checked against the pinned fixture):

**Index scaling** — build a :class:`repro.analysis.similarity.KernelIndex`
over growing corpus prefixes and answer the same held-out k-NN queries
through the VP-tree and through the brute-force reference scan.  The
two must return **identical** neighbor lists (a correctness failure
exits 1); the gate then compares *distance-evaluation counts* — a
machine-independent cost measure — and requires the tree to spend at
most ``--max-evals-ratio`` (default 0.5) of the brute-force budget at
the largest corpus size.  Wall-clock timings ride along as trend
artifacts only.

**Proxy hit-rate multiplier** — warm a per-device
:class:`repro.core.proxy.ProxyTier` corpus plus the exact-key result
cache by simulating every workload at ``--warm-preset`` across the
device zoo, then replay the ``--preset`` streams (different scale ⇒
near-duplicate, rarely identical kernels) through the same caches.
The gate requires the effective hit count (exact + proxy) to be at
least ``--min-multiplier`` (default 2.0) times the exact-only count —
the headline claim that the proxy tier multiplies the cache's reach on
a warm corpus.  Audit sampling is disabled here so the counts are
exact.

The ``SIM-*`` rows land in the report under ``workloads`` so they can
be merged into ``BENCH_pipeline.json`` (``--merge-into``) and ride the
shared gross-regression gate::

    PYTHONPATH=src python benchmarks/bench_similarity.py \
        --preset observation --merge-into BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DIGEST_FIXTURE = (
    REPO_ROOT / "tests" / "golden" / "fixtures" / "stream_digests.json"
)
DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_similarity.json"

_PRESETS = ("laptop", "observation", "paper")
_CACTUS_ORDER = (
    "GMS", "LMR", "LMC", "GST", "GRU", "DCG", "NST", "RFL", "SPT", "LGT",
)

DEFAULT_QUERIES = 64
DEFAULT_KNN = 3
DEFAULT_PROXY_TOL = 0.5
DEFAULT_MIN_MULTIPLIER = 2.0
DEFAULT_MAX_EVALS_RATIO = 0.5


def _preset(name: str):
    from repro.core.config import (
        LAPTOP_SCALE,
        OBSERVATION_SCALE,
        PAPER_SCALE,
    )

    return {
        "laptop": LAPTOP_SCALE,
        "observation": OBSERVATION_SCALE,
        "paper": PAPER_SCALE,
    }[name]


def _pinned_digests(preset_name: str) -> Dict[str, Dict]:
    if not DIGEST_FIXTURE.exists():
        return {}
    payload = json.loads(DIGEST_FIXTURE.read_text(encoding="utf-8"))
    return payload.get("presets", {}).get(preset_name, {})


def _streams(preset_name: str, workloads: Sequence[str]):
    """(abbr, stream, digest) per workload, digest-checked when pinned."""
    from repro.gpu.digest import launch_stream_digest
    from repro.profiler.profiler import Profiler
    from repro.workloads.registry import get_workload

    preset = _preset(preset_name)
    pinned = _pinned_digests(preset_name)
    out = []
    mismatches = []
    for abbr in workloads:
        workload = get_workload(
            abbr, scale=preset.for_workload(abbr), seed=0
        )
        stream = Profiler().prepare_stream(workload)
        digest = launch_stream_digest(stream)
        reference = pinned.get(abbr)
        if reference is not None and reference["digest"] != digest:
            mismatches.append(abbr)
        out.append((abbr, stream, digest))
    return out, mismatches


def _distinct_kernels(streams) -> List:
    """Distinct KernelCharacteristics, first-seen order across streams."""
    seen = set()
    corpus = []
    for _, stream, _ in streams:
        for launch in stream:
            if launch.kernel not in seen:
                seen.add(launch.kernel)
                corpus.append(launch.kernel)
    return corpus


# -- experiment 1: index build/query scaling ---------------------------
def bench_index_scaling(
    streams, n_queries: int, k: int, max_evals_ratio: float
) -> Dict:
    """VP-tree vs brute-force over growing prefixes of the corpus."""
    from repro.analysis.similarity import KernelIndex, kernel_features
    from repro.gpu.digest import kernel_digest

    corpus = _distinct_kernels(streams)
    if len(corpus) < 2 * n_queries:
        n_queries = max(1, len(corpus) // 4)
    # Hold out every (len/n)-th kernel as a query: novel vectors, spread
    # across workloads, deterministic.
    stride = max(1, len(corpus) // n_queries)
    query_rows = set(range(0, len(corpus), stride)[:n_queries])
    queries = [kernel_features(corpus[i]) for i in sorted(query_rows)]
    indexable = [
        kernel for i, kernel in enumerate(corpus) if i not in query_rows
    ]

    sizes = []
    size = 256
    while size < len(indexable):
        sizes.append(size)
        size *= 2
    sizes.append(len(indexable))

    scaling = []
    identical = True
    for size in sizes:
        tree = KernelIndex(use_tree=True)
        brute = KernelIndex(use_tree=False)
        for kernel in indexable[:size]:
            digest = kernel_digest(kernel)
            tree.add(digest, kernel_features(kernel), None)
            brute.add(digest, kernel_features(kernel), None)
        t0 = time.perf_counter()
        tree.build()
        build_s = time.perf_counter() - t0

        evals0 = tree.distance_evals
        t0 = time.perf_counter()
        tree_answers = [tree.knn(q, k) for q in queries]
        tree_query_s = time.perf_counter() - t0
        tree_evals = tree.distance_evals - evals0

        brute.build()
        evals0 = brute.distance_evals
        t0 = time.perf_counter()
        brute_answers = [brute.knn(q, k) for q in queries]
        brute_query_s = time.perf_counter() - t0
        brute_evals = brute.distance_evals - evals0

        same = all(
            [(n.key, n.distance) for n in a]
            == [(n.key, n.distance) for n in b]
            for a, b in zip(tree_answers, brute_answers)
        )
        identical = identical and same
        scaling.append({
            "corpus": size,
            "build_s": build_s,
            "tree_query_s": tree_query_s,
            "brute_query_s": brute_query_s,
            "tree_evals": tree_evals,
            "brute_evals": brute_evals,
            "evals_ratio": (
                tree_evals / brute_evals if brute_evals else 0.0
            ),
            "identical": same,
        })

    final = scaling[-1]
    return {
        "queries": len(queries),
        "k": k,
        "scaling": scaling,
        "identical": identical,
        "evals_ratio": final["evals_ratio"],
        "sublinear_ok": final["evals_ratio"] <= max_evals_ratio,
        "max_evals_ratio": max_evals_ratio,
        # total_s is what the shared regression gate compares: one
        # build plus both query passes at the largest corpus size.
        "total_s": (
            final["build_s"]
            + final["tree_query_s"]
            + final["brute_query_s"]
        ),
    }


# -- experiment 2: proxy hit-rate multiplier on a warm corpus ----------
def bench_proxy_multiplier(
    warm_streams,
    measure_streams,
    devices,
    proxy_tol: float,
    min_multiplier: float,
) -> Dict:
    """Effective (exact + proxy) vs exact-only cache hits, count-gated."""
    from repro.core.cache import ResultCache
    from repro.core.proxy import ProxyBank, ProxyConfig
    from repro.gpu.simulator import GPUSimulator

    cache = ResultCache()
    # audit_fraction=0 keeps the hit/miss counts exact (audits would
    # deterministically reclassify ~5% of hits as misses).
    bank = ProxyBank(ProxyConfig(tolerance=proxy_tol, audit_fraction=0.0))

    t0 = time.perf_counter()
    for device in devices:
        for _, stream, _ in warm_streams:
            GPUSimulator(
                device, cache=cache, proxy=bank.tier(device)
            ).run_stream(stream)
    warm_s = time.perf_counter() - t0
    warm_hits = cache.stats.hits
    warm_proxy = cache.stats.proxy_hits

    t0 = time.perf_counter()
    for device in devices:
        for _, stream, _ in measure_streams:
            GPUSimulator(
                device, cache=cache, proxy=bank.tier(device)
            ).run_stream(stream)
    measure_s = time.perf_counter() - t0

    exact_hits = cache.stats.hits - warm_hits
    proxy_hits = cache.stats.proxy_hits - warm_proxy
    effective = exact_hits + proxy_hits
    lookups = sum(
        len({l.kernel for l in stream}) for _, stream, _ in measure_streams
    ) * len(devices)
    multiplier = effective / max(1, exact_hits)
    return {
        "devices": len(devices),
        "proxy_tol": proxy_tol,
        "warm_s": warm_s,
        "measure_s": measure_s,
        "lookups": lookups,
        "exact_hits": exact_hits,
        "proxy_hits": proxy_hits,
        "effective_hits": effective,
        "exact_hit_rate": exact_hits / lookups if lookups else 0.0,
        "effective_hit_rate": effective / lookups if lookups else 0.0,
        "multiplier": multiplier,
        "multiplier_ok": multiplier >= min_multiplier,
        "min_multiplier": min_multiplier,
        "total_s": measure_s,
    }


def run_benchmark(
    preset_name: str,
    warm_preset: str = "laptop",
    workloads: Optional[Sequence[str]] = None,
    devices=None,
    n_queries: int = DEFAULT_QUERIES,
    k: int = DEFAULT_KNN,
    proxy_tol: float = DEFAULT_PROXY_TOL,
    min_multiplier: float = DEFAULT_MIN_MULTIPLIER,
    max_evals_ratio: float = DEFAULT_MAX_EVALS_RATIO,
) -> Dict:
    from repro.gpu import DEVICE_ZOO

    if devices is None:
        devices = list(DEVICE_ZOO.values())
    selected = list(workloads or _CACTUS_ORDER)
    measure_streams, mismatches = _streams(preset_name, selected)
    warm_streams, warm_mismatches = _streams(warm_preset, selected)

    index = bench_index_scaling(
        measure_streams, n_queries, k, max_evals_ratio
    )
    proxy = bench_proxy_multiplier(
        warm_streams, measure_streams, devices, proxy_tol, min_multiplier
    )

    failures = []
    failures.extend(f"{abbr} (digest, {preset_name})" for abbr in mismatches)
    failures.extend(
        f"{abbr} (digest, {warm_preset})" for abbr in warm_mismatches
    )
    if not index["identical"]:
        failures.append("index (tree != brute-force answers)")
    if not index["sublinear_ok"]:
        failures.append(
            f"index (evals ratio {index['evals_ratio']:.3f} > "
            f"{max_evals_ratio})"
        )
    if not proxy["multiplier_ok"]:
        failures.append(
            f"proxy (multiplier {proxy['multiplier']:.2f}x < "
            f"{min_multiplier}x)"
        )

    return {
        "schema": 1,
        "preset": preset_name,
        "warm_preset": warm_preset,
        "generated_at_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "devices": [d.name for d in devices],
        "workloads": {"SIM-INDEX": index, "SIM-PROXY": proxy},
        "combined_total_s": index["total_s"] + proxy["total_s"],
        "failures": failures,
    }


def merge_into_pipeline_report(report: Dict, pipeline_path: Path) -> None:
    """Append the SIM-* rows to an existing BENCH_pipeline.json."""
    pipeline = json.loads(pipeline_path.read_text(encoding="utf-8"))
    pipeline["workloads"].update(report["workloads"])
    pipeline["similarity_evals_ratio"] = (
        report["workloads"]["SIM-INDEX"]["evals_ratio"]
    )
    pipeline["proxy_multiplier"] = (
        report["workloads"]["SIM-PROXY"]["multiplier"]
    )
    pipeline_path.write_text(
        json.dumps(pipeline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=_PRESETS, default="observation",
        help="scale preset measured (default: observation)",
    )
    parser.add_argument(
        "--warm-preset", choices=_PRESETS, default="laptop",
        help="scale preset that warms the proxy corpus and exact cache "
        "(default: laptop)",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="ABBR", default=None,
        help="workload abbreviations (default: the full Cactus suite)",
    )
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_QUERIES,
        help=f"held-out k-NN queries (default: {DEFAULT_QUERIES})",
    )
    parser.add_argument(
        "--proxy-tol", type=float, default=DEFAULT_PROXY_TOL,
        help="proxy tolerance for the multiplier experiment "
        f"(default: {DEFAULT_PROXY_TOL})",
    )
    parser.add_argument(
        "--min-multiplier", type=float, default=DEFAULT_MIN_MULTIPLIER,
        help="fail below this effective/exact hit multiplier "
        f"(default: {DEFAULT_MIN_MULTIPLIER}x; count-based, not timing)",
    )
    parser.add_argument(
        "--max-evals-ratio", type=float, default=DEFAULT_MAX_EVALS_RATIO,
        help="fail above this tree/brute distance-eval ratio at full "
        f"corpus size (default: {DEFAULT_MAX_EVALS_RATIO}; count-based)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--merge-into", type=Path, default=None, metavar="PIPELINE_JSON",
        help="also merge the SIM-* entries into this existing "
        "BENCH_pipeline.json so the shared regression gate covers them",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.preset,
        warm_preset=args.warm_preset,
        workloads=args.workloads,
        n_queries=args.queries,
        proxy_tol=args.proxy_tol,
        min_multiplier=args.min_multiplier,
        max_evals_ratio=args.max_evals_ratio,
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    if args.merge_into is not None:
        merge_into_pipeline_report(report, args.merge_into)

    index = report["workloads"]["SIM-INDEX"]
    for row in index["scaling"]:
        print(
            f"corpus {row['corpus']:>5}  build {row['build_s']*1e3:7.1f}ms  "
            f"tree {row['tree_evals']:>7} evals  "
            f"brute {row['brute_evals']:>7} evals  "
            f"ratio {row['evals_ratio']:.3f}  "
            f"[{'ok' if row['identical'] else 'DIVERGED'}]"
        )
    proxy = report["workloads"]["SIM-PROXY"]
    print(
        f"proxy: {proxy['exact_hits']} exact + {proxy['proxy_hits']} proxy "
        f"= {proxy['effective_hits']}/{proxy['lookups']} lookups "
        f"({proxy['effective_hit_rate']:.1%} effective vs "
        f"{proxy['exact_hit_rate']:.1%} exact) -> "
        f"{proxy['multiplier']:.2f}x over {proxy['devices']} devices "
        f"at tol {proxy['proxy_tol']} -> {args.output}"
    )
    if report["failures"]:
        print(
            "FAIL: " + ", ".join(report["failures"]), file=sys.stderr
        )
        return 1
    return 0


# -- pytest coverage (laptop-scale, deterministic gates only) ----------
def test_similarity_bench_gates(tmp_path):
    from repro.gpu import DEVICE_ZOO

    devices = list(DEVICE_ZOO.values())[:2]
    report = run_benchmark(
        "observation",
        warm_preset="laptop",
        workloads=["GRU", "GST"],
        devices=devices,
        n_queries=16,
    )
    out = tmp_path / "BENCH_similarity.json"
    out.write_text(json.dumps(report), encoding="utf-8")
    assert report["failures"] == []
    index = report["workloads"]["SIM-INDEX"]
    assert index["identical"] is True
    assert index["sublinear_ok"] is True
    proxy = report["workloads"]["SIM-PROXY"]
    assert proxy["proxy_hits"] > 0
    assert proxy["multiplier"] >= DEFAULT_MIN_MULTIPLIER


def test_merge_into_pipeline_report(tmp_path):
    from repro.gpu import DEVICE_ZOO

    pipeline = tmp_path / "BENCH_pipeline.json"
    pipeline.write_text(
        json.dumps(
            {"schema": 1, "preset": "laptop",
             "workloads": {"GST": {"total_s": 0.1}}}
        ),
        encoding="utf-8",
    )
    report = run_benchmark(
        "laptop",
        warm_preset="laptop",
        workloads=["GST"],
        devices=list(DEVICE_ZOO.values())[:1],
        n_queries=4,
        min_multiplier=0.0,  # same-preset warm: exact hits dominate
    )
    merge_into_pipeline_report(report, pipeline)
    merged = json.loads(pipeline.read_text(encoding="utf-8"))
    assert set(merged["workloads"]) == {"GST", "SIM-INDEX", "SIM-PROXY"}
    assert "proxy_multiplier" in merged


if __name__ == "__main__":
    raise SystemExit(main())
