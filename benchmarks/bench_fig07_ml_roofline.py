"""Fig. 7: per-kernel rooflines for the ML training workloads.

Paper shape (panels a-c):
  (a) every ML application features kernels on BOTH sides of the elbow
      with a wide performance spread;
  (b) most kernels individually contribute < 10 % of the time;
  (c) among the dominant kernels, several are pinned near the
      DRAM-bandwidth roof; the most dominant kernels of DCG/NST are
      compute-intensive while LGT's most dominant is memory-intensive.
"""

from repro.analysis.roofline import render_roofline_ascii

ML = ("DCG", "NST", "RFL", "SPT", "LGT")


def _panels(cactus_run):
    all_points = {a: cactus_run[a].kernel_points for a in ML}
    dominant = {a: cactus_run[a].dominant_points for a in ML}
    return all_points, dominant


def test_fig07_ml_roofline(benchmark, cactus_run, save_exhibit):
    all_points, dominant = benchmark(_panels, cactus_run)

    flat = [p for points in all_points.values() for p in points]
    lines = [f"Fig. 7a — all {len(flat)} ML kernels:"]
    lines.append(render_roofline_ascii(flat, height=14))
    lines.append("Fig. 7c — dominant ML kernels (per workload top set):")
    for abbr, points in dominant.items():
        for point in points[:5]:
            lines.append(
                f"  {abbr:<4} {point.label:<44} II={point.intensity:8.2f} "
                f"GIPS={point.gips:8.2f} {point.intensity_class} "
                f"({point.distance_to_roof():4.0%} of roof)"
            )
    save_exhibit("fig07_ml_roofline", "\n".join(lines))

    # (a) every ML app mixes both sides with a wide GIPS spread.
    for abbr, points in all_points.items():
        classes = {p.intensity_class for p in points}
        assert classes == {"compute", "memory"}, abbr
        gips = sorted(p.gips for p in points)
        assert gips[-1] > 20 * gips[0], abbr
    # (b) most kernels contribute less than 10% of their app's time.
    small = sum(1 for p in flat if p.time_share < 0.10)
    assert small / len(flat) > 0.8
    # (c) the most dominant kernels: DCG/NST compute, LGT memory.
    assert dominant["DCG"][0].is_compute_intensive
    assert dominant["NST"][0].is_compute_intensive
    assert not dominant["LGT"][0].is_compute_intensive
    # Several dominant ML kernels hug the DRAM-bandwidth roof.
    near_roof = sum(
        1
        for points in dominant.values()
        for p in points
        if not p.is_compute_intensive and p.distance_to_roof() > 0.6
    )
    assert near_roof >= 3
