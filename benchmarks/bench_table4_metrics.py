"""Table IV: the profiler metric set.

Every metric of Table IV is collected per kernel by the simulator and
populated with meaningful (non-degenerate) values across the suite.
"""

from repro.core import characterize
from repro.gpu.metrics import SECONDARY_METRICS, metric_table
from repro.workloads import get_workload


def _metric_rows():
    return metric_table()


def test_table4_metrics(benchmark, save_exhibit):
    rows = benchmark(_metric_rows)

    lines = ["Table IV — performance characteristics:"]
    for name, description in rows:
        lines.append(f"  {name:<26} {description}")
    save_exhibit("table4_metrics", "\n".join(lines))

    # 12 rows as in the paper (L1/L2 hit rate shares a row).
    assert len(rows) == 12

    # Every metric varies across a real workload's kernels (no dead
    # columns feeding the correlation/clustering analyses).
    profile = characterize(get_workload("GMS", scale=0.05)).profile
    for metric in SECONDARY_METRICS:
        values = {round(k.metrics.metric(metric), 6) for k in profile.kernels}
        assert len(values) > 1, f"metric {metric} is degenerate"
