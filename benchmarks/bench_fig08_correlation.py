"""Fig. 8: |PCC| of primary vs. profiler metrics, Cactus vs. PRT.

Paper shape: the Cactus population correlates broadly — GIPS alone
relates (|PCC| >= 0.2) to ~7 of the 13 profiler metrics.  The PRT
comparison is the reproduction's one known partial match: our
four-archetype PRT models correlate more broadly than the 32 real
binaries did (see EXPERIMENTS.md), so only the Cactus side and the
existence of the banding structure are asserted.
"""

from repro.analysis.correlation import correlation_matrix
from repro.gpu.metrics import PRIMARY_METRICS


def _matrices(cactus_run, prt_run):
    cactus_matrix = correlation_matrix(cactus_run.profiles("Cactus"))
    prt_profiles = [
        c.profile
        for suite in ("Parboil", "Rodinia", "Tango")
        for c in prt_run.suite(suite)
    ]
    return cactus_matrix, correlation_matrix(prt_profiles)


def test_fig08_correlation(benchmark, cactus_run, prt_run, save_exhibit):
    cactus_matrix, prt_matrix = benchmark(_matrices, cactus_run, prt_run)

    lines = ["Fig. 8a — Cactus:", cactus_matrix.render(),
             "", "Fig. 8b — Parboil/Rodinia/Tango:", prt_matrix.render()]
    save_exhibit("fig08_correlation", "\n".join(lines))

    # Cactus GIPS correlates with ~7 metrics (paper: 7 of 13).
    gips_links = len(cactus_matrix.correlated_columns("gips"))
    assert 5 <= gips_links <= 10, gips_links
    # Every primary metric correlates with several profiler metrics.
    for row in PRIMARY_METRICS:
        assert len(cactus_matrix.correlated_columns(row)) >= 4, row
    # All three bands appear in the Cactus matrix (black/gray/white).
    bands = {
        cactus_matrix.band(r, c).value
        for r in cactus_matrix.rows
        for c in cactus_matrix.columns
    }
    assert bands == {"black", "gray", "white"}
