"""Device-sweep benchmark: batched device axis vs N scalar simulations.

Times each Cactus workload's device sweep both ways — the naive loop
(one :class:`GPUSimulator.run_stream` walk per zoo device) and the
batched broadcast pass (:func:`repro.gpu.batched.simulate_devices`) —
over the full 8-device zoo, and verifies the two produce **bit-for-bit
identical** metrics before any timing is recorded.  Each stream's
``launch_stream_digest`` is additionally checked against the pinned
fixture (``tests/golden/fixtures/stream_digests.json``); an equality or
digest mismatch is a correctness failure (exit 1 / test failure),
timings are a trend artifact.

The per-workload batched wall clock lands in the report under
``SWEEP-<ABBR>`` keys so it can be merged into ``BENCH_pipeline.json``
(``--merge-into``) and ride the same gross-regression gate
(``check_bench_regression.py``) as the scalar pipeline stages::

    PYTHONPATH=src python benchmarks/bench_device_sweep.py \
        --preset observation --merge-into BENCH_pipeline.json

Run directly with ``--min-speedup 3`` to also enforce the batched
pass's speedup target on a quiet machine (CI never gates on it).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DIGEST_FIXTURE = (
    REPO_ROOT / "tests" / "golden" / "fixtures" / "stream_digests.json"
)
DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_sweep.json"

_PRESETS = ("laptop", "observation", "paper")
_CACTUS_ORDER = (
    "GMS", "LMR", "LMC", "GST", "GRU", "DCG", "NST", "RFL", "SPT", "LGT",
)


def _preset(name: str):
    from repro.core.config import (
        LAPTOP_SCALE,
        OBSERVATION_SCALE,
        PAPER_SCALE,
    )

    return {
        "laptop": LAPTOP_SCALE,
        "observation": OBSERVATION_SCALE,
        "paper": PAPER_SCALE,
    }[name]


def _pinned_digests(preset_name: str) -> Dict[str, Dict]:
    if not DIGEST_FIXTURE.exists():
        return {}
    payload = json.loads(DIGEST_FIXTURE.read_text(encoding="utf-8"))
    return payload.get("presets", {}).get(preset_name, {})


def _metrics_identical(batched, scalar) -> bool:
    if len(batched) != len(scalar):
        return False
    for b, s in zip(batched, scalar):
        for f in dataclasses.fields(s):
            if getattr(b, f.name) != getattr(s, f.name):
                return False
    return True


def bench_sweep_workload(abbr: str, preset_name: str, devices) -> Dict:
    """One workload's sweep, timed naive vs batched (equality-gated)."""
    from repro.gpu import GPUSimulator
    from repro.gpu.batched import simulate_devices
    from repro.gpu.digest import launch_stream_digest
    from repro.profiler.profiler import Profiler
    from repro.workloads.registry import get_workload

    preset = _preset(preset_name)
    workload = get_workload(abbr, scale=preset.for_workload(abbr), seed=0)
    stream = Profiler().prepare_stream(workload)
    digest = launch_stream_digest(stream)

    t0 = time.perf_counter()
    naive = [
        GPUSimulator(device).run_stream(stream) for device in devices
    ]
    t1 = time.perf_counter()
    batched = simulate_devices(stream, devices)
    t2 = time.perf_counter()

    identical = all(
        _metrics_identical(b, s) for b, s in zip(batched, naive)
    )
    naive_s = t1 - t0
    batched_s = t2 - t1
    return {
        "naive_s": naive_s,
        "batched_s": batched_s,
        # total_s is what the shared regression gate compares.
        "total_s": batched_s,
        "speedup": naive_s / batched_s if batched_s > 0 else float("inf"),
        "identical": identical,
        "launches": len(stream),
        # Same grouping counts the scalar pipeline entries carry, so
        # SWEEP-* rows satisfy the shared report schema: distinct
        # kernel *names* and distinct KernelCharacteristics (the
        # simulator's actual memoization unit).
        "distinct_kernels": len({l.kernel.name for l in stream}),
        "distinct_characteristics": len({l.kernel for l in stream}),
        "devices": len(devices),
        "digest": digest,
    }


def run_benchmark(
    preset_name: str, workloads: Optional[List[str]] = None
) -> Dict:
    """Benchmark the sweep over the full zoo for *workloads*."""
    from repro.gpu import DEVICE_ZOO

    devices = list(DEVICE_ZOO.values())
    selected = list(workloads or _CACTUS_ORDER)
    pinned = _pinned_digests(preset_name)
    results: Dict[str, Dict] = {}
    mismatches: List[str] = []
    for abbr in selected:
        entry = bench_sweep_workload(abbr, preset_name, devices)
        reference = pinned.get(abbr)
        if reference is None:
            entry["digest_ok"] = None
        else:
            entry["digest_ok"] = entry["digest"] == reference["digest"]
            if not entry["digest_ok"]:
                mismatches.append(abbr)
        if not entry["identical"]:
            mismatches.append(f"{abbr} (batched != scalar)")
        results[f"SWEEP-{abbr}"] = entry
    naive_total = sum(r["naive_s"] for r in results.values())
    batched_total = sum(r["batched_s"] for r in results.values())
    return {
        "schema": 1,
        "preset": preset_name,
        "generated_at_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "devices": [d.name for d in devices],
        "workloads": results,
        "naive_total_s": naive_total,
        "batched_total_s": batched_total,
        "combined_total_s": batched_total,
        "overall_speedup": (
            naive_total / batched_total if batched_total > 0 else 0.0
        ),
        "mismatches": mismatches,
    }


def merge_into_pipeline_report(report: Dict, pipeline_path: Path) -> None:
    """Append the SWEEP-* rows to an existing BENCH_pipeline.json.

    The regression gate compares per-entry ``total_s`` for every shared
    key, so once a baseline carries SWEEP-* rows a gross batched-path
    slowdown fails CI exactly like a scalar-stage slowdown would.
    """
    pipeline = json.loads(pipeline_path.read_text(encoding="utf-8"))
    pipeline["workloads"].update(report["workloads"])
    pipeline["sweep_devices"] = report["devices"]
    pipeline["sweep_overall_speedup"] = report["overall_speedup"]
    pipeline_path.write_text(
        json.dumps(pipeline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=_PRESETS, default="observation",
        help="scale preset to benchmark at (default: observation)",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="ABBR", default=None,
        help="workload abbreviations (default: the full Cactus suite)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write BENCH_sweep.json (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--merge-into", type=Path, default=None, metavar="PIPELINE_JSON",
        help="also merge the SWEEP-* entries into this existing "
        "BENCH_pipeline.json so the shared regression gate covers them",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless batched is at least X times faster overall "
        "(off by default: CI machines are too noisy to gate on)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.preset, args.workloads)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    if args.merge_into is not None:
        merge_into_pipeline_report(report, args.merge_into)

    width = max(len(k) for k in report["workloads"])
    for key, entry in report["workloads"].items():
        status = {True: "ok", False: "DIGEST MISMATCH", None: "unpinned"}[
            entry["digest_ok"]
        ]
        if not entry["identical"]:
            status = "METRICS DIVERGED"
        print(
            f"{key:<{width}}  naive {entry['naive_s']:7.3f}s  "
            f"batched {entry['batched_s']:7.3f}s  "
            f"speedup {entry['speedup']:5.2f}x  [{status}]"
        )
    print(
        f"overall: naive {report['naive_total_s']:.3f}s, batched "
        f"{report['batched_total_s']:.3f}s -> "
        f"{report['overall_speedup']:.2f}x over {len(report['devices'])} "
        f"devices ({report['preset']} preset) -> {args.output}"
    )
    if report["mismatches"]:
        print(
            "FAIL: correctness mismatches: "
            + ", ".join(report["mismatches"]),
            file=sys.stderr,
        )
        return 1
    if (
        args.min_speedup is not None
        and report["overall_speedup"] < args.min_speedup
    ):
        print(
            f"FAIL: overall speedup {report['overall_speedup']:.2f}x < "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_device_sweep_bitexact(tmp_path):
    """Correctness-gated smoke run (timings recorded, never asserted)."""
    report = run_benchmark("laptop", ["GST", "DCG"])
    out = tmp_path / "BENCH_sweep.json"
    out.write_text(json.dumps(report), encoding="utf-8")
    assert report["mismatches"] == []
    for entry in report["workloads"].values():
        assert entry["identical"] is True
        assert entry["digest_ok"] is True
        assert entry["devices"] == 8


def test_merge_into_pipeline_report(tmp_path):
    pipeline = tmp_path / "BENCH_pipeline.json"
    pipeline.write_text(
        json.dumps(
            {"schema": 1, "preset": "laptop",
             "workloads": {"GST": {"total_s": 0.1}}}
        ),
        encoding="utf-8",
    )
    report = run_benchmark("laptop", ["GST"])
    merge_into_pipeline_report(report, pipeline)
    merged = json.loads(pipeline.read_text(encoding="utf-8"))
    assert set(merged["workloads"]) == {"GST", "SWEEP-GST"}
    assert (
        merged["workloads"]["SWEEP-GST"]["total_s"]
        == report["workloads"]["SWEEP-GST"]["total_s"]
    )


if __name__ == "__main__":
    raise SystemExit(main())
