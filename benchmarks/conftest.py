"""Shared fixtures for the figure/table regeneration benchmarks.

Both suites are traced once per session at the observation scale; each
benchmark then times the *analysis* step that produces its exhibit and
writes the rendered rows/series to ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import OBSERVATION_SCALE, run_suite

OUTPUT_DIR = Path(__file__).parent / "output"


def _engine_kwargs():
    """Engine knobs from the environment.

    ``REPRO_CACHE_DIR`` points the suite fixtures at a persistent result
    cache (the CI cache-warm smoke runs the Fig. 3 benchmark twice with
    it set and expects the second run to be served warm);
    ``REPRO_JOBS`` fans the characterizations out over a process pool;
    ``REPRO_RETRIES``/``REPRO_TIMEOUT`` configure the retry policy
    (benchmark runs stay strict — a failed workload fails the fixture).
    """
    from repro.core import RetryPolicy

    kwargs = {}
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        kwargs["cache_dir"] = cache_dir
    jobs = os.environ.get("REPRO_JOBS")
    if jobs:
        kwargs["jobs"] = int(jobs)
    if os.environ.get("REPRO_RETRIES") or os.environ.get("REPRO_TIMEOUT"):
        kwargs["retry_policy"] = RetryPolicy.from_env()
    return kwargs


@pytest.fixture(scope="session")
def cactus_run():
    return run_suite(["Cactus"], preset=OBSERVATION_SCALE, **_engine_kwargs())


@pytest.fixture(scope="session")
def prt_run():
    return run_suite(
        ["Parboil", "Rodinia", "Tango"],
        preset=OBSERVATION_SCALE,
        **_engine_kwargs(),
    )


@pytest.fixture(scope="session")
def save_exhibit():
    """Write an exhibit's rendered text to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} ---")
        print(text)

    return _save
