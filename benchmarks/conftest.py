"""Shared fixtures for the figure/table regeneration benchmarks.

Both suites are traced once per session at the observation scale; each
benchmark then times the *analysis* step that produces its exhibit and
writes the rendered rows/series to ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import OBSERVATION_SCALE, run_suite

OUTPUT_DIR = Path(__file__).parent / "output"


def _engine_kwargs():
    """Engine knobs from the environment.

    ``REPRO_CACHE_DIR`` points the suite fixtures at a persistent result
    cache (the CI cache-warm smoke runs the Fig. 3 benchmark twice with
    it set and expects the second run to be served warm);
    ``REPRO_JOBS`` fans the characterizations out over a process pool;
    ``REPRO_RETRIES``/``REPRO_TIMEOUT`` configure the retry policy
    (benchmark runs stay strict — a failed workload fails the fixture).
    """
    from repro.core import RetryPolicy

    kwargs = {}
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        kwargs["cache_dir"] = cache_dir
    jobs = os.environ.get("REPRO_JOBS")
    if jobs:
        kwargs["jobs"] = int(jobs)
    if os.environ.get("REPRO_RETRIES") or os.environ.get("REPRO_TIMEOUT"):
        kwargs["retry_policy"] = RetryPolicy.from_env()
    return kwargs


def _run_suites(suites):
    """``run_suite`` with cache stats surfaced (and optionally gated).

    With ``REPRO_REQUIRE_CACHE_WARM=1`` (the CI warm run), the fixture
    fails unless every characterization was served from the persistent
    cache — a 100% hit rate, zero misses.  A silent cache-key or
    serialization regression would otherwise recompute everything and
    still pass.
    """
    from repro.core import ResultCache

    kwargs = _engine_kwargs()
    cache = None
    cache_dir = kwargs.pop("cache_dir", None)
    if cache_dir:
        cache = ResultCache(cache_dir=cache_dir)
        kwargs["cache"] = cache
    report = run_suite(suites, preset=OBSERVATION_SCALE, **kwargs)
    if cache is not None:
        stats = cache.stats
        print(f"\n[cache] {'+'.join(suites)}: {stats.render()}")
        if os.environ.get("REPRO_REQUIRE_CACHE_WARM"):
            assert stats.misses == 0 and stats.hits == stats.lookups > 0, (
                f"REPRO_REQUIRE_CACHE_WARM is set but the "
                f"{'+'.join(suites)} run was not fully cache-served: "
                f"{stats.render()} (hit rate "
                f"{stats.hit_rate:.0%}, want 100%)"
            )
    return report


@pytest.fixture(scope="session")
def cactus_run():
    return _run_suites(["Cactus"])


@pytest.fixture(scope="session")
def prt_run():
    return _run_suites(["Parboil", "Rodinia", "Tango"])


@pytest.fixture(scope="session")
def save_exhibit():
    """Write an exhibit's rendered text to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} ---")
        print(text)

    return _save
