"""Device-sweep ablation (the paper's future work, Section VI).

Re-characterizes a Cactus subset on every device preset.  Shape facts:
a bandwidth-rich part (A100, lower elbow) pulls borderline workloads to
the compute side; memory-bound workloads speed up proportionally to
bandwidth; compute-bound ones track SM count x clock.
"""

from repro.core import characterize
from repro.gpu import A100, EDGE_GPU, RTX_3080, DEVICE_PRESETS
from repro.workloads import get_workload

SUBSET = ("GMS", "LMR", "GST", "DCG", "SPT")


def _sweep():
    table = {}
    for name, device in DEVICE_PRESETS.items():
        for abbr in SUBSET:
            result = characterize(get_workload(abbr, scale=0.25),
                                  device=device)
            table[(name, abbr)] = result.aggregate_point
    return table


def test_ablation_devices(benchmark, save_exhibit):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [f"{'device':<10}" + "".join(f"{a:>16}" for a in SUBSET)]
    for name in DEVICE_PRESETS:
        cells = []
        for abbr in SUBSET:
            point = table[(name, abbr)]
            side = "C" if point.is_compute_intensive else "M"
            cells.append(f"{point.gips:9.1f} {side}")
        lines.append(f"{name:<10}" + "".join(f"{c:>16}" for c in cells))
    save_exhibit("ablation_devices", "\n".join(lines))

    # Memory-bound GST gains with bandwidth (A100 ~2x the 3080's BW).
    gst_3080 = table[(RTX_3080.name, "GST")].gips
    gst_a100 = table[(A100.name, "GST")].gips
    assert gst_a100 > 1.2 * gst_3080
    # Everything is slower on the edge part.
    for abbr in SUBSET:
        assert (
            table[(EDGE_GPU.name, abbr)].gips
            < table[(RTX_3080.name, abbr)].gips
        )
    # The elbow ordering: A100's machine balance is more
    # bandwidth-rich, so its elbow sits left of the 3080's.
    assert A100.roofline_elbow < RTX_3080.roofline_elbow
