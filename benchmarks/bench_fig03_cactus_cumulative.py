"""Fig. 3: cumulative GPU time vs. number of kernels for Cactus.

Paper shape: the ML workloads need about a dozen kernels to reach 70 %
of the GPU time; every molecular/graph workload except GST reaches
90 % with at most a handful.  GST reaches ~70 % with its single
dominant pull-advance kernel.
"""

from repro.analysis.distribution import cumulative_time_curve


def _curves(cactus_run):
    return {
        c.abbr: cumulative_time_curve(c.profile, max_kernels=14)
        for c in cactus_run.suite("Cactus")
    }


def test_fig03_cactus_cumulative(benchmark, cactus_run, save_exhibit):
    curves = benchmark(_curves, cactus_run)

    lines = ["Fig. 3 — cumulative time fraction at k kernels (k=1..14):"]
    for abbr, curve in curves.items():
        series = " ".join(f"{frac:.2f}" for _, frac in curve)
        lines.append(f"  {abbr:<4} {series}")
    save_exhibit("fig03_cactus_cumulative", "\n".join(lines))

    def at(abbr, k):
        curve = curves[abbr]
        index = min(k, len(curve)) - 1
        return curve[index][1]

    # Molecular + road-graph workloads: >= 90% within 10 kernels
    # (Fig. 3: LMR approaches ~90% around ten kernels).
    for abbr in ("GMS", "LMR", "LMC", "GRU"):
        assert at(abbr, 10) >= 0.90, abbr
    # GST: one kernel covers ~70%.
    assert at("GST", 1) >= 0.60
    # ML workloads: a single kernel never covers 70% - time is spread.
    for abbr in ("DCG", "NST", "RFL", "SPT", "LGT"):
        assert at(abbr, 1) < 0.45, abbr
        assert at(abbr, 14) >= 0.70, abbr
    # ML needs strictly more kernels than molecular for the same cover.
    for ml in ("NST", "RFL", "SPT"):
        assert at(ml, 3) < at("GMS", 3)
