"""Ablations of the GPU model's design choices (DESIGN.md section 6).

Disabling each model component must change the measured picture in the
direction its design rationale predicts:

* no cache model  -> DRAM traffic explodes, intensities collapse;
* no launch overhead -> the road-network BFS (thousands of tiny
  launches) speeds up dramatically, big workloads barely move;
* no latency model -> irregular kernels get unrealistically fast.
"""

import pytest

from repro.core import characterize
from repro.gpu import (
    GPUSimulator,
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
    RTX_3080,
    SimulationOptions,
)
from repro.gpu.timing import TimingOptions
from repro.profiler import Profiler
from repro.workloads import get_workload


def _pointer_chase_kernel() -> KernelCharacteristics:
    """A latency-bound probe: L2-resident working set (few DRAM
    transactions), one outstanding dependent load per warp."""
    return KernelCharacteristics(
        name="pointer_chase_probe",
        grid_blocks=4096,
        threads_per_block=256,
        warp_insts=2e8,
        mix=InstructionMix(fp32=0.05, ld_st=0.45, branch=0.10),
        memory=MemoryFootprint(
            bytes_read=3e6,  # fits the 5 MB L2
            reuse_factor=64.0,
            l1_locality=0.05,
            coalescence=0.5,
        ),
        ilp=1.1,
        mlp=1.05,
    )


def _profile(abbr, scale, options=None):
    simulator = GPUSimulator(options=options or SimulationOptions())
    workload = get_workload(abbr, scale=scale)
    return Profiler(simulator=simulator).profile(workload)


def _run_ablations():
    base_gms = _profile("GMS", 0.1)
    nocache_gms = _profile(
        "GMS", 0.1, SimulationOptions(model_caches=False)
    )
    base_gru = _profile("GRU", 0.005)
    nooverhead_gru = _profile(
        "GRU", 0.005,
        SimulationOptions(timing=TimingOptions(model_launch_overhead=False)),
    )
    chase = _pointer_chase_kernel()
    base_chase = GPUSimulator().run_kernel(chase)
    nolatency_chase = GPUSimulator(
        options=SimulationOptions(timing=TimingOptions(model_latency=False))
    ).run_kernel(chase)
    return {
        "gms": (base_gms, nocache_gms),
        "gru": (base_gru, nooverhead_gru),
        "chase": (base_chase, nolatency_chase),
    }


def test_ablation_model(benchmark, save_exhibit):
    results = benchmark.pedantic(_run_ablations, rounds=1, iterations=1)

    base_gms, nocache_gms = results["gms"]
    base_gru, nooverhead_gru = results["gru"]
    base_chase, nolatency_chase = results["chase"]

    lines = [
        "Model ablations:",
        f"  caches off   (GMS): II {base_gms.instruction_intensity:7.2f} "
        f"-> {nocache_gms.instruction_intensity:7.2f}",
        f"  overhead off (GRU): time {base_gru.total_time_s * 1e3:7.2f} ms "
        f"-> {nooverhead_gru.total_time_s * 1e3:7.2f} ms",
        f"  latency off  (pointer chase): GIPS {base_chase.gips:7.2f} "
        f"-> {nolatency_chase.gips:7.2f}",
    ]
    save_exhibit("ablation_model", "\n".join(lines))

    # Cache model: without it, DRAM transactions balloon and the
    # compute-side GMS collapses towards the memory side.
    assert (
        nocache_gms.instruction_intensity
        < 0.5 * base_gms.instruction_intensity
    )
    # Launch overhead: dominates the road BFS; removing it must speed
    # GRU up by a large factor.
    assert nooverhead_gru.total_time_s < 0.5 * base_gru.total_time_s
    # Latency model: a dependent-load probe over an L2-resident set is
    # latency-bound; without the model it jumps to (near) peak issue.
    assert nolatency_chase.gips > 3.0 * base_chase.gips
