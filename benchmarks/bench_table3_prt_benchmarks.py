"""Table III: the Parboil/Rodinia/Tango benchmark roster.

11 Parboil + 18 Rodinia + 3 Tango workloads, all runnable through the
pipeline.
"""

from repro.workloads import get_workload, list_workloads


def _roster():
    return {
        suite: list_workloads(suite)
        for suite in ("Parboil", "Rodinia", "Tango")
    }


def test_table3_prt_benchmarks(benchmark, save_exhibit):
    roster = benchmark(_roster)

    lines = ["Table III — baseline benchmarks:"]
    for suite, members in roster.items():
        names = [get_workload(m, scale=0.01).name for m in members]
        lines.append(f"  {suite} ({len(members)}): {', '.join(names)}")
    save_exhibit("table3_prt_benchmarks", "\n".join(lines))

    assert len(roster["Parboil"]) == 11
    assert len(roster["Rodinia"]) == 18
    assert len(roster["Tango"]) == 3
    # Spot-check the named entries of Table III.
    rodinia_names = {
        get_workload(m, scale=0.01).name for m in roster["Rodinia"]
    }
    assert {"b+tree", "lud", "kmeans", "srad_v1"} <= rodinia_names
