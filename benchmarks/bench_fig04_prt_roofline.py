"""Fig. 4: rooflines for Parboil (a), Rodinia (b) and Tango (c).

Paper shape: every benchmark's kernels sit on ONE side of the elbow —
either all memory-intensive or all compute-intensive — except LUD
(one of each) and AlexNet (two compute + one memory).
"""

from repro.analysis.roofline import render_roofline_ascii
from repro.gpu import RTX_3080


def _classify(prt_run):
    sides = {}
    points = {}
    for suite in ("Parboil", "Rodinia", "Tango"):
        for c in prt_run.suite(suite):
            points.setdefault(suite, []).extend(c.kernel_points)
            sides[c.abbr] = sorted(
                {p.intensity_class for p in c.kernel_points}
            )
    return sides, points


def test_fig04_prt_roofline(benchmark, prt_run, save_exhibit):
    sides, points = benchmark(_classify, prt_run)

    lines = []
    for suite, suite_points in points.items():
        lines.append(f"Fig. 4 — {suite} roofline "
                     f"(elbow {RTX_3080.roofline_elbow:.2f}):")
        lines.append(render_roofline_ascii(suite_points, height=14))
    lines.append("per-benchmark sides: " + ", ".join(
        f"{abbr}:{'/'.join(s)}" for abbr, s in sorted(sides.items())
    ))
    save_exhibit("fig04_prt_roofline", "\n".join(lines))

    mixed = {abbr for abbr, s in sides.items() if len(s) == 2}
    assert mixed == {"LUD", "AN"}
    # The named Fig. 4 examples.
    assert sides["P-BFS"] == ["memory"]
    assert sides["HISTO"] == ["memory"]
    assert sides["KMEANS"] == ["memory"]
    assert sides["SRAD"] == ["memory"]
    assert sides["BTREE"] == ["compute"]
    assert sides["SN"] == ["compute"]
    assert sides["RN"] == ["compute"]
