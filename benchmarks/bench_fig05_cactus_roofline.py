"""Fig. 5: aggregate roofline for the ten Cactus applications.

Paper shape: most Cactus applications sit on the memory side; the
graph workloads (GST, GRU) are clearly memory-intensive with the
lowest performance; GMS is the only clearly compute-intensive one;
SPT is the only other exception, close to the boundary; LMR/LMC land
near the boundary.
"""

from repro.analysis.roofline import render_roofline_ascii
from repro.gpu import RTX_3080


def _aggregate(cactus_run):
    return {c.abbr: c.aggregate_point for c in cactus_run.suite("Cactus")}


def test_fig05_cactus_roofline(benchmark, cactus_run, save_exhibit):
    points = benchmark(_aggregate, cactus_run)

    lines = [f"Fig. 5 — Cactus aggregate roofline "
             f"(elbow {RTX_3080.roofline_elbow:.2f}):"]
    for abbr, point in points.items():
        lines.append(
            f"  {abbr:<4} II={point.intensity:8.2f} "
            f"GIPS={point.gips:8.2f}  {point.intensity_class}"
        )
    lines.append(render_roofline_ascii(list(points.values()), height=14))
    save_exhibit("fig05_cactus_roofline", "\n".join(lines))

    elbow = RTX_3080.roofline_elbow
    # GMS clearly compute-side.
    assert points["GMS"].intensity > 1.5 * elbow
    # Graph workloads clearly memory-side with the lowest performance.
    assert points["GST"].intensity < 0.1 * elbow
    assert points["GRU"].intensity < 0.1 * elbow
    slowest_two = sorted(points, key=lambda a: points[a].gips)[:2]
    assert set(slowest_two) == {"GST", "GRU"}
    # Most applications memory-side; SPT the only ML exception.
    memory_side = {a for a, p in points.items() if not p.is_compute_intensive}
    assert {"GST", "GRU", "DCG", "NST", "RFL", "LGT", "LMC"} <= memory_side
    assert points["SPT"].is_compute_intensive
    # LMR/LMC near the boundary (within 2x either way).
    for abbr in ("LMR", "LMC"):
        assert 0.5 * elbow < points[abbr].intensity < 2.0 * elbow
