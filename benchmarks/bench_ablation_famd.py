"""FAMD-vs-PCA clustering-stability ablation (Section V.D's rationale).

The paper chooses FAMD over the PCA of prior characterization work
because denoised mixed-data factors yield a *more stable* clustering.
This ablation quantifies that on the real dominant-kernel population:
leave-one-out adjusted-Rand stability of the six-cluster Ward cut, with
FAMD factors vs. PCA-on-quantitative factors vs. raw standardized
metrics.
"""

import numpy as np

from repro.analysis.famd import famd, _standardize_quantitative
from repro.analysis.pca import clustering_stability, pca
from repro.core.compare import _dominant_kernel_features


def _feature_sets(cactus_run, prt_run):
    q1, c1, l1, _ = _dominant_kernel_features(cactus_run, ["Cactus"])
    q2, c2, l2, _ = _dominant_kernel_features(
        prt_run, ["Parboil", "Rodinia", "Tango"]
    )
    quantitative = {k: q1[k] + q2[k] for k in q1}
    qualitative = {k: c1[k] + c2[k] for k in c1}

    famd_result = famd(quantitative, qualitative)
    k_famd = max(2, famd_result.components_for_variance(0.80))
    pca_result = pca(quantitative)
    k_pca = max(2, pca_result.components_for_variance(0.80))
    raw = _standardize_quantitative(
        np.column_stack([np.asarray(v) for v in quantitative.values()])
    )
    return {
        "famd": famd_result.coordinates[:, :k_famd],
        "pca": pca_result.coordinates[:, :k_pca],
        "raw": raw,
    }


def test_ablation_famd(benchmark, cactus_run, prt_run, save_exhibit):
    spaces = benchmark.pedantic(
        _feature_sets, args=(cactus_run, prt_run), rounds=1, iterations=1
    )
    # Leave-one-out over a fixed fold budget keeps this tractable.
    stability = {
        name: clustering_stability(points, n_clusters=6, drop_count=24)
        for name, points in spaces.items()
    }

    lines = ["Six-cluster Ward stability (leave-one-out adjusted Rand):"]
    for name, value in stability.items():
        lines.append(f"  {name:<5} {value:.3f}")
    save_exhibit("ablation_famd", "\n".join(lines))

    # The paper's rationale: denoised factors beat clustering on the
    # raw characteristics, and the mixed-data factorization is at least
    # as stable as quantitative-only PCA.
    assert stability["famd"] >= stability["raw"] - 0.05
    assert stability["famd"] >= stability["pca"] - 0.05
    assert stability["famd"] > 0.5
