"""Benchmark-regression gate: fresh BENCH_pipeline.json vs the baseline.

Compares a freshly generated hot-path benchmark report (see
``bench_pipeline_hotpaths.py``) against the committed
``benchmarks/BENCH_baseline.json`` and fails **only on gross
slowdowns**: a workload (or the combined total) must exceed the
baseline by more than ``--tolerance`` (default 1.5x) *and* by more than
``--min-seconds`` (default 0.1s) before it counts.  The double
threshold keeps the gate honest on CI: shared runners are noisy, and
sub-100ms stage timings swing far more than 1.5x for free.

Speedups, new workloads, and workloads missing from the baseline are
reported but never fail the check.

Re-baselining
-------------

When a legitimate change moves the numbers (an optimization landed, a
workload's scale changed), regenerate the baseline on a quiet machine
and commit it::

    PYTHONPATH=src python benchmarks/bench_pipeline_hotpaths.py \
        --preset observation --output benchmarks/BENCH_baseline.json

Review the diff like code: every per-workload delta should be
explainable by the change you are landing.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_baseline.json"

DEFAULT_TOLERANCE = 1.5
DEFAULT_MIN_SECONDS = 0.1


def load_report(path: Path) -> Dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "workloads" not in payload:
        raise ValueError(f"{path} is not a BENCH_pipeline report")
    return payload


def schema_problem(entry) -> Optional[str]:
    """Why *entry* cannot be timing-compared, or None if it can.

    The gate only ever reads ``total_s``, so that is the schema: a
    finite, non-negative number.  Entries violating it (null
    placeholders, strings, missing keys from hand-edited baselines) are
    skipped *explicitly* — reported, never silently compared as 0.
    """
    if not isinstance(entry, dict):
        return f"entry is {type(entry).__name__}, not an object"
    total = entry.get("total_s")
    if isinstance(total, bool) or not isinstance(total, (int, float)):
        return f"total_s is {total!r}, not a number"
    if not math.isfinite(total) or total < 0:
        return f"total_s is {total!r}, not finite and >= 0"
    return None


def compare(
    baseline: Dict,
    fresh: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    skipped: Optional[List[str]] = None,
) -> List[str]:
    """Regression messages (empty list = gate passes).

    A timing regresses when ``fresh > baseline * tolerance`` AND
    ``fresh - baseline > min_seconds``; everything else — speedups,
    small absolute drifts, workloads absent from either side — is
    informational only.  Entries failing :func:`schema_problem` on
    either side are excluded from the comparison and appended to
    *skipped* (when given) as ``"<key>: <reason>"`` strings.
    """
    if baseline.get("preset") != fresh.get("preset"):
        return [
            f"preset mismatch: baseline is {baseline.get('preset')!r}, "
            f"fresh run is {fresh.get('preset')!r} — regenerate the "
            f"baseline (see module docstring)"
        ]

    regressions: List[str] = []

    def check(label: str, base_s: float, fresh_s: float) -> None:
        if fresh_s > base_s * tolerance and fresh_s - base_s > min_seconds:
            regressions.append(
                f"{label}: {fresh_s:.3f}s vs baseline {base_s:.3f}s "
                f"({fresh_s / base_s:.2f}x, tolerance {tolerance:.2f}x)"
            )

    base_workloads = baseline.get("workloads", {})
    fresh_workloads = fresh.get("workloads", {})
    shared_base = shared_fresh = 0.0
    for abbr, entry in fresh_workloads.items():
        reference = base_workloads.get(abbr)
        if reference is None:
            continue  # new workload: informational, never gating
        problem = schema_problem(entry)
        if problem is None:
            base_problem = schema_problem(reference)
            problem = f"baseline {base_problem}" if base_problem else None
        if problem is not None:
            if skipped is not None:
                skipped.append(f"{abbr}: {problem}")
            continue
        check(f"{abbr} total", reference["total_s"], entry["total_s"])
        shared_base += float(reference["total_s"])
        shared_fresh += float(entry["total_s"])

    # Combined total over the *shared* workload set only, so adding or
    # removing a workload never masquerades as a timing change.
    check("combined total (shared workloads)", shared_base, shared_fresh)
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path,
        help="freshly generated BENCH_pipeline.json to check",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="slowdown ratio that counts as a regression "
        f"(default: {DEFAULT_TOLERANCE}x)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="absolute slowdown floor below which nothing gates "
        f"(default: {DEFAULT_MIN_SECONDS}s)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline} — skipping the regression "
            f"gate (commit one to enable it; see module docstring)",
        )
        return 0

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)

    shared = sorted(
        set(baseline.get("workloads", {})) & set(fresh.get("workloads", {}))
    )
    for abbr in shared:
        base_entry = baseline["workloads"][abbr]
        fresh_entry = fresh["workloads"][abbr]
        if schema_problem(base_entry) or schema_problem(fresh_entry):
            print(f"{abbr:<5} skipped (schema)")
            continue
        base_s = base_entry["total_s"]
        fresh_s = fresh_entry["total_s"]
        ratio = fresh_s / base_s if base_s else float("inf")
        print(
            f"{abbr:<5} baseline {base_s:7.3f}s  fresh {fresh_s:7.3f}s  "
            f"({ratio:5.2f}x)"
        )

    skipped: List[str] = []
    regressions = compare(
        baseline, fresh, tolerance=args.tolerance,
        min_seconds=args.min_seconds, skipped=skipped,
    )
    if skipped:
        print("\nskipped (schema) — excluded from the gate:")
        for message in skipped:
            print(f"  {message}")
    if regressions:
        print("\nFAIL: gross benchmark regressions:", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        print(
            "\nIf this slowdown is expected, re-baseline (see "
            "benchmarks/check_bench_regression.py docstring).",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nbenchmark gate passed: {len(shared)} workload(s) within "
        f"{args.tolerance:.2f}x of baseline"
    )
    return 0


# -- pytest coverage of the gate logic (no subprocess, no timing) ------
def _report(preset: str, totals: Dict[str, float]) -> Dict:
    return {
        "schema": 1,
        "preset": preset,
        "workloads": {
            abbr: {"total_s": seconds} for abbr, seconds in totals.items()
        },
        "combined_total_s": sum(totals.values()),
    }


def test_within_tolerance_passes():
    baseline = _report("observation", {"GMS": 1.0, "GST": 0.5})
    fresh = _report("observation", {"GMS": 1.4, "GST": 0.7})
    assert compare(baseline, fresh) == []


def test_gross_slowdown_fails():
    baseline = _report("observation", {"GMS": 1.0})
    fresh = _report("observation", {"GMS": 1.8})
    messages = compare(baseline, fresh)
    assert len(messages) == 2  # the workload and the combined total
    assert "GMS total" in messages[0]


def test_tiny_absolute_slowdowns_never_gate():
    # 10x slower but only 9ms absolute: below the floor, not a failure.
    baseline = _report("observation", {"GRU": 0.001})
    fresh = _report("observation", {"GRU": 0.010})
    assert compare(baseline, fresh) == []


def test_speedups_and_new_workloads_pass():
    baseline = _report("observation", {"GMS": 2.0})
    fresh = _report("observation", {"GMS": 0.5, "NEW": 9.9})
    assert compare(baseline, fresh) == []


def test_preset_mismatch_fails():
    baseline = _report("observation", {"GMS": 1.0})
    fresh = _report("laptop", {"GMS": 1.0})
    messages = compare(baseline, fresh)
    assert len(messages) == 1 and "preset mismatch" in messages[0]


def test_schema_invalid_entries_skip_explicitly():
    baseline = _report("observation", {"GMS": 1.0, "GST": 0.5})
    fresh = _report("observation", {"GMS": 1.0, "GST": 0.5})
    # A null placeholder, a string, a NaN, and a missing total_s must
    # each be skipped with a reason — not compared, not crash the gate.
    baseline["workloads"]["SWEEP-A"] = {"total_s": None}
    fresh["workloads"]["SWEEP-A"] = {"total_s": 0.1}
    baseline["workloads"]["SWEEP-B"] = {"total_s": 0.1}
    fresh["workloads"]["SWEEP-B"] = {"total_s": "fast"}
    baseline["workloads"]["SWEEP-C"] = {"total_s": 0.1}
    fresh["workloads"]["SWEEP-C"] = {"total_s": float("nan")}
    baseline["workloads"]["SWEEP-D"] = {"launches": 10}
    fresh["workloads"]["SWEEP-D"] = {"total_s": 99.0}
    skipped: List[str] = []
    assert compare(baseline, fresh, skipped=skipped) == []
    assert sorted(m.split(":")[0] for m in skipped) == [
        "SWEEP-A", "SWEEP-B", "SWEEP-C", "SWEEP-D",
    ]


def test_schema_problem_reasons():
    assert schema_problem({"total_s": 0.5}) is None
    assert schema_problem({"total_s": 0}) is None
    assert "not a number" in schema_problem({"total_s": None})
    assert "not a number" in schema_problem({"total_s": True})
    assert "not a number" in schema_problem({})
    assert "not finite" in schema_problem({"total_s": float("inf")})
    assert "not finite" in schema_problem({"total_s": -1.0})
    assert "not an object" in schema_problem([1, 2])


if __name__ == "__main__":
    raise SystemExit(main())
