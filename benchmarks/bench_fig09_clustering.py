"""Fig. 9: FAMD + Ward dendrogram over all dominant kernels.

Paper shape: six primary clusters; kernels of the same PRT benchmark
stay within at most two clusters; kernels of the same Cactus
application spread across several; some clusters are dominated by (or
exclusive to) Cactus kernels, i.e. Cactus covers a larger part of the
workload space.
"""

from collections import Counter

from repro.analysis.clustering import render_dendrogram
from repro.core.compare import cluster_dominant_kernels


def _cluster(cactus_run, prt_run):
    return cluster_dominant_kernels(cactus_run, prt_run, n_clusters=6)


def test_fig09_clustering(benchmark, cactus_run, prt_run, save_exhibit):
    labels, owners, assignment, suite_of, tree = benchmark(
        _cluster, cactus_run, prt_run
    )

    lines = [render_dendrogram(tree, n_clusters=6, max_members=8)]
    composition = Counter()
    cactus_counts = Counter()
    for owner, cluster in zip(owners, assignment):
        composition[cluster] += 1
        if suite_of[owner] == "Cactus":
            cactus_counts[cluster] += 1
    for cluster in sorted(composition):
        share = cactus_counts[cluster] / composition[cluster]
        lines.append(
            f"cluster {cluster + 1}: {composition[cluster]} kernels, "
            f"{share:.0%} from Cactus"
        )
    save_exhibit("fig09_clustering", "\n".join(lines))

    assert len(set(assignment)) == 6

    clusters_of = {}
    for owner, cluster in zip(owners, assignment):
        clusters_of.setdefault(owner, set()).add(cluster)
    # PRT benchmarks: at most two clusters each (Obs. 10).
    for owner, clusters in clusters_of.items():
        if suite_of[owner] == "PRT":
            assert len(clusters) <= 2, owner
    # Several Cactus workloads spread across >= 3 clusters (Obs. 11).
    spread = sum(
        1
        for owner, clusters in clusters_of.items()
        if suite_of[owner] == "Cactus" and len(clusters) >= 3
    )
    assert spread >= 3
    # Cactus-dominated clusters exist and Cactus covers nearly all of
    # the space (Obs. 12).
    dominated = [
        c for c in composition
        if cactus_counts[c] / composition[c] > 0.6
    ]
    assert len(dominated) >= 2
    assert sum(1 for c in composition if cactus_counts[c] > 0) >= 5
