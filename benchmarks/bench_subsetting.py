"""Subsetting/redundancy analysis (extension; DESIGN.md section 6).

The quantitative counterpart of Observation 12: at equal coverage of
their own dispersion, both suites compress — but the representatives
selected from the *pooled* population must include Cactus kernels to
cover the regions PRT never reaches.
"""

import numpy as np

from repro.analysis.famd import famd
from repro.analysis.subsetting import (
    representatives_for_coverage,
    select_representatives,
)
from repro.core.compare import _dominant_kernel_features


def _pooled_points(cactus_run, prt_run):
    q1, c1, l1, o1 = _dominant_kernel_features(cactus_run, ["Cactus"])
    q2, c2, l2, o2 = _dominant_kernel_features(
        prt_run, ["Parboil", "Rodinia", "Tango"]
    )
    quantitative = {k: q1[k] + q2[k] for k in q1}
    qualitative = {k: c1[k] + c2[k] for k in c1}
    factors = famd(quantitative, qualitative)
    k = max(2, factors.components_for_variance(0.80))
    points = factors.coordinates[:, :k]
    labels = l1 + l2
    origin = ["Cactus"] * len(l1) + ["PRT"] * len(l2)
    return points, labels, origin


def test_subsetting(benchmark, cactus_run, prt_run, save_exhibit):
    points, labels, origin = benchmark.pedantic(
        _pooled_points, args=(cactus_run, prt_run), rounds=1, iterations=1
    )

    result = representatives_for_coverage(np.asarray(points), labels, 0.85)
    reps = result.representative_labels
    rep_origin = [origin[i] for i in result.representative_indices]

    lines = [
        f"representatives for 85% coverage of the pooled dominant-kernel "
        f"population: {len(reps)} of {len(labels)}",
    ]
    for label, suite in zip(reps, rep_origin):
        lines.append(f"  [{suite:<6}] {label}")
    share = rep_origin.count("Cactus") / len(rep_origin)
    lines.append(f"Cactus share among representatives: {share:.0%} "
                 f"(population share: {origin.count('Cactus') / len(origin):.0%})")
    save_exhibit("subsetting", "\n".join(lines))

    # A small subset covers the pooled population...
    assert len(reps) < len(labels) / 2
    # ...but it cannot be built without Cactus kernels (Obs. 12's
    # "larger workload space" from the subsetting angle).
    assert "Cactus" in rep_origin

    fixed = select_representatives(np.asarray(points), labels, k=8)
    assert fixed.coverage > 0.5
