"""Hot-path performance benchmark for the characterization pipeline.

Times every Cactus workload through the three pipeline stages — launch
stream construction (graph generation + traversal), simulation, and
analysis — and writes the per-workload wall-clock breakdown to
``BENCH_pipeline.json``.  Each stream's ``launch_stream_digest`` is
checked against the pinned fixture
(``tests/golden/fixtures/stream_digests.json``): a **digest mismatch is
a correctness failure** (exit code 1 / test failure); **timings are
recorded but never gate** — they are a trend artifact, CI machines are
too noisy to assert on.

Run directly for the paper-scale numbers the DESIGN.md performance
section quotes::

    PYTHONPATH=src python benchmarks/bench_pipeline_hotpaths.py --preset paper

or at a reduced scale (the CI job)::

    PYTHONPATH=src python benchmarks/bench_pipeline_hotpaths.py \
        --preset laptop --output BENCH_pipeline.json

The module is also collected by pytest: ``test_pipeline_hotpaths`` runs
the graph workloads at the laptop preset and asserts only digests.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DIGEST_FIXTURE = (
    REPO_ROOT / "tests" / "golden" / "fixtures" / "stream_digests.json"
)
DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_pipeline.json"

_PRESETS = ("laptop", "observation", "paper")
_CACTUS_ORDER = (
    "GMS", "LMR", "LMC", "GST", "GRU", "DCG", "NST", "RFL", "SPT", "LGT",
)


def _preset(name: str):
    from repro.core.config import (
        LAPTOP_SCALE,
        OBSERVATION_SCALE,
        PAPER_SCALE,
    )

    return {
        "laptop": LAPTOP_SCALE,
        "observation": OBSERVATION_SCALE,
        "paper": PAPER_SCALE,
    }[name]


def _pinned_digests(preset_name: str) -> Dict[str, Dict]:
    if not DIGEST_FIXTURE.exists():
        return {}
    payload = json.loads(DIGEST_FIXTURE.read_text(encoding="utf-8"))
    return payload.get("presets", {}).get(preset_name, {})


def bench_workload(abbr: str, preset_name: str) -> Dict:
    """Characterize one workload, timing each pipeline stage."""
    from repro.core.characterize import build_characterization
    from repro.gpu.digest import launch_stream_digest
    from repro.profiler.profiler import Profiler
    from repro.workloads.registry import get_workload

    preset = _preset(preset_name)
    workload = get_workload(abbr, scale=preset.for_workload(abbr), seed=0)
    profiler = Profiler()

    t0 = time.perf_counter()
    stream = profiler.prepare_stream(workload)
    t1 = time.perf_counter()
    profile = profiler.profile_launches(
        stream,
        workload=workload.name,
        suite=workload.suite,
        domain=workload.domain,
    )
    t2 = time.perf_counter()
    characterization = build_characterization(abbr, profile)
    t3 = time.perf_counter()
    digest = launch_stream_digest(stream)

    return {
        "stream_s": t1 - t0,
        "simulate_s": t2 - t1,
        "analyze_s": t3 - t2,
        "total_s": t3 - t0,
        "launches": len(stream),
        "distinct_kernels": len(characterization.profile.kernels),
        # Distinct KernelCharacteristics values — the simulator's actual
        # grouping unit (kernel *names* above can each cover thousands
        # of structurally distinct launches, e.g. GRU's per-level BFS
        # frontiers).  simulate_s scales with this, not with launches.
        "distinct_characteristics": len({l.kernel for l in stream}),
        "digest": digest,
    }


def run_benchmark(
    preset_name: str, workloads: Optional[List[str]] = None
) -> Dict:
    """Benchmark *workloads* (default: the full Cactus suite)."""
    selected = list(workloads or _CACTUS_ORDER)
    pinned = _pinned_digests(preset_name)
    results: Dict[str, Dict] = {}
    mismatches: List[str] = []
    for abbr in selected:
        entry = bench_workload(abbr, preset_name)
        reference = pinned.get(abbr)
        if reference is None:
            entry["digest_ok"] = None  # nothing pinned for this preset
        else:
            entry["digest_ok"] = entry["digest"] == reference["digest"]
            if not entry["digest_ok"]:
                mismatches.append(abbr)
        results[abbr] = entry
    return {
        "schema": 1,
        "preset": preset_name,
        "generated_at_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "workloads": results,
        "combined_total_s": sum(r["total_s"] for r in results.values()),
        "digest_mismatches": mismatches,
    }


def write_report(report: Dict, output: Path) -> None:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=_PRESETS, default="paper",
        help="scale preset to benchmark at (default: paper)",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="ABBR", default=None,
        help="workload abbreviations (default: the full Cactus suite)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write BENCH_pipeline.json (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.preset, args.workloads)
    write_report(report, args.output)

    width = max(len(a) for a in report["workloads"])
    for abbr, entry in report["workloads"].items():
        status = {True: "ok", False: "DIGEST MISMATCH", None: "unpinned"}[
            entry["digest_ok"]
        ]
        print(
            f"{abbr:<{width}}  stream {entry['stream_s']:7.3f}s  "
            f"simulate {entry['simulate_s']:7.3f}s  "
            f"analyze {entry['analyze_s']:7.3f}s  "
            f"total {entry['total_s']:7.3f}s  [{status}]"
        )
    print(
        f"combined: {report['combined_total_s']:.3f}s "
        f"({report['preset']} preset) -> {args.output}"
    )
    if report["digest_mismatches"]:
        print(
            "FAIL: launch-stream digest mismatch for "
            + ", ".join(report["digest_mismatches"]),
            file=sys.stderr,
        )
        return 1
    return 0


def test_pipeline_hotpaths(tmp_path):
    """Digest-gated smoke run at the laptop preset (timings not asserted)."""
    report = run_benchmark("laptop", ["GST", "GRU"])
    write_report(report, tmp_path / "BENCH_pipeline.json")
    assert (tmp_path / "BENCH_pipeline.json").exists()
    assert report["digest_mismatches"] == []
    for entry in report["workloads"].values():
        assert entry["digest_ok"] is True
    # Grouping-ratio guard (deterministic: streams are digest-pinned).
    # GRU's 8 kernel names cover thousands of structurally distinct
    # per-BFS-level launches — the simulate hot path must group by
    # KernelCharacteristics equality and batch-evaluate the distinct
    # set, so the counts themselves are asserted here: a regression
    # that breaks kernel identity (e.g. a per-launch field leaking into
    # KernelCharacteristics) would inflate distinct_characteristics
    # toward launches.
    gru = report["workloads"]["GRU"]
    assert gru["distinct_kernels"] == 8
    assert gru["distinct_characteristics"] == 1679
    assert gru["launches"] / gru["distinct_characteristics"] > 1.4
    gst = report["workloads"]["GST"]
    assert gst["distinct_characteristics"] <= gst["launches"]


def test_md_pipeline_hotpaths(tmp_path):
    """MD stream/simulate/analyze phase timings (GMS/LMR/LMC), digest
    gated like the graph run.  The recorded phase breakdown is what
    BENCH_pipeline.json tracks as the MD-vectorization trend artifact;
    wall-clock itself is asserted only by the CI regression gate."""
    report = run_benchmark("laptop", ["GMS", "LMR", "LMC"])
    write_report(report, tmp_path / "BENCH_pipeline.json")
    assert report["digest_mismatches"] == []
    for abbr in ("GMS", "LMR", "LMC"):
        entry = report["workloads"][abbr]
        assert entry["digest_ok"] is True
        for phase in ("stream_s", "simulate_s", "analyze_s"):
            assert entry[phase] >= 0.0


if __name__ == "__main__":
    raise SystemExit(main())
