"""Table I: the Cactus benchmark suite's execution characteristics.

Paper values (kernel counts are exact targets; instruction totals are
scale-normalized, so only their ordering is checked):

  workload  kernels(100%)  kernels(70%)
  GMS        9              3
  LMR       15              2
  LMC        9              3
  GST       12              1
  GRU        8              3
  DCG       50              9
  NST       44             11
  RFL       50             13
  SPT       37             10
  LGT       66             14
"""

import pytest

from repro.analysis.distribution import table1_row

PAPER_KERNELS_100 = {
    "GMS": 9, "LMR": 15, "LMC": 9, "GST": 12, "GRU": 8,
    "DCG": 50, "NST": 44, "RFL": 50, "SPT": 37, "LGT": 66,
}
PAPER_KERNELS_70 = {
    "GMS": 3, "LMR": 2, "LMC": 3, "GST": 1, "GRU": 3,
    "DCG": 9, "NST": 11, "RFL": 13, "SPT": 10, "LGT": 14,
}


def _rows(cactus_run):
    return [
        table1_row(c.profile, abbr=c.abbr)
        for c in cactus_run.suite("Cactus")
    ]


def test_table1_cactus_suite(benchmark, cactus_run, save_exhibit):
    rows = benchmark(_rows, cactus_run)

    lines = [
        f"{'abbr':<5} {'total insts':>12} {'w-avg/kernel':>13} "
        f"{'k100%':>6} {'k70%':>5} {'paper k100/k70':>15}"
    ]
    for row in rows:
        lines.append(
            f"{row.abbr:<5} {row.total_warp_insts:>12.3e} "
            f"{row.weighted_avg_insts_per_kernel:>13.3e} "
            f"{row.kernels_100:>6} {row.kernels_70:>5} "
            f"{PAPER_KERNELS_100[row.abbr]:>9}/{PAPER_KERNELS_70[row.abbr]}"
        )
    save_exhibit("table1_cactus_suite", "\n".join(lines))

    by_abbr = {row.abbr: row for row in rows}
    # Exact kernel-count match for every workload.
    for abbr, expected in PAPER_KERNELS_100.items():
        assert by_abbr[abbr].kernels_100 == expected, abbr
    # Dominance within +-2 kernels of the paper.
    for abbr, expected in PAPER_KERNELS_70.items():
        measured = by_abbr[abbr].kernels_70
        tolerance = 2 if expected < 10 else 8
        assert abs(measured - expected) <= tolerance, (
            f"{abbr}: 70%-kernels {measured} vs paper {expected}"
        )
    # Per-kernel weighted averages: GST's fat launches dwarf GRU's tiny
    # ones (paper: 187M vs 40K warp insts per kernel).
    assert (
        by_abbr["GST"].weighted_avg_insts_per_kernel
        > 100 * by_abbr["GRU"].weighted_avg_insts_per_kernel
    )
    # Instruction totals: the conv-heavy trainers (DCG 621B, NST 153B in
    # the paper) dominate the ML group; SPT (11B) is its smallest entry.
    # Absolute totals depend on the profiled-window length, so only the
    # ordering is checked.
    ml = ["DCG", "NST", "RFL", "SPT", "LGT"]
    ordered = sorted(ml, key=lambda a: by_abbr[a].total_warp_insts,
                     reverse=True)
    assert set(ordered[:2]) == {"DCG", "NST"}
    assert ordered[-1] == "SPT"
