"""Fig. 1: benchmark-suite popularity at ISCA/MICRO/ASPLOS/HPCA.

Fig. 1 is literature-survey data (papers per suite per year); the
exhibit is reproduced from the transcribed dataset.  Shape facts:
Rodinia is the most popular suite, Parboil second.
"""

from repro.analysis.survey import popularity_ranking, survey_table


def test_fig01_survey(benchmark, save_exhibit):
    ranking = benchmark(popularity_ranking)
    save_exhibit("fig01_survey", survey_table())

    assert ranking[0][0] == "Rodinia"
    assert ranking[1][0] == "Parboil"
    assert ranking[0][1] > 2 * ranking[2][1]
