"""Extension workloads (the paper's future work): TRF, PGR, GCN.

Shape facts: the transformer behaves like the Cactus ML class (large
kernel menu, mixed intensity); PageRank behaves like an all-edges
graph kernel (few fat memory-bound launches); GCN straddles both
worlds in one profile.
"""

from repro.core import characterize
from repro.gpu import RTX_3080
from repro.workloads import get_workload


def _run_extensions():
    return {
        abbr: characterize(get_workload(abbr, scale=scale))
        for abbr, scale in (("TRF", 1.0), ("PGR", 0.005), ("GCN", 0.005))
    }


def test_extensions(benchmark, save_exhibit):
    results = benchmark.pedantic(_run_extensions, rounds=1, iterations=1)

    lines = ["Extension workloads:"]
    for abbr, result in results.items():
        point = result.aggregate_point
        lines.append(
            f"  {abbr}: kernels={result.table1.kernels_100} "
            f"k70={result.table1.kernels_70} II={point.intensity:.1f} "
            f"GIPS={point.gips:.1f} ({point.intensity_class})"
        )
    save_exhibit("extensions", "\n".join(lines))

    elbow = RTX_3080.roofline_elbow
    # TRF: Cactus-ML-class menu and spread.
    assert results["TRF"].table1.kernels_100 >= 35
    assert results["TRF"].table1.kernels_70 >= 6
    # PGR: three-kernel all-edges iteration, memory-bound.
    assert results["PGR"].table1.kernels_100 == 3
    assert results["PGR"].aggregate_point.intensity < elbow
    # GCN: mixes irregular aggregation with dense GEMMs.
    sides = {p.intensity_class for p in results["GCN"].kernel_points}
    assert sides == {"compute", "memory"}
