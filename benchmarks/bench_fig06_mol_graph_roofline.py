"""Fig. 6: per-kernel rooflines for the molecular and graph workloads.

Paper shape (panels a-c):
  (a) molecular kernels mix compute- and memory-intensive behaviour —
      GMS mostly compute-side, LMR/LMC mostly memory-side;
  (b) graph kernels are mostly memory-intensive;
  (c) among the *dominant* kernels: GMS has two compute + one memory,
      LMR one of each, LMC one compute + two memory, and the graph
      dominants are all memory-intensive.
"""

from repro.analysis.roofline import render_roofline_ascii

MOLECULAR = ("GMS", "LMR", "LMC")
GRAPH = ("GST", "GRU")


def _panels(cactus_run):
    molecular = [p for a in MOLECULAR for p in cactus_run[a].kernel_points]
    graph = [p for a in GRAPH for p in cactus_run[a].kernel_points]
    dominant = {
        a: cactus_run[a].dominant_points for a in MOLECULAR + GRAPH
    }
    return molecular, graph, dominant


def test_fig06_mol_graph_roofline(benchmark, cactus_run, save_exhibit):
    molecular, graph, dominant = benchmark(_panels, cactus_run)

    lines = ["Fig. 6a — molecular kernels:"]
    lines.append(render_roofline_ascii(molecular, height=12))
    lines.append("Fig. 6b — graph kernels:")
    lines.append(render_roofline_ascii(graph, height=12))
    lines.append("Fig. 6c — dominant kernels:")
    for abbr, points in dominant.items():
        for point in points:
            lines.append(
                f"  {abbr:<4} {point.label:<34} II={point.intensity:8.2f} "
                f"GIPS={point.gips:8.2f} {point.intensity_class}"
            )
    save_exhibit("fig06_mol_graph_roofline", "\n".join(lines))

    def sides(abbr):
        compute = sum(
            1 for p in dominant[abbr] if p.is_compute_intensive
        )
        return compute, len(dominant[abbr]) - compute

    assert sides("GMS") == (2, 1)  # two compute + one memory
    assert sides("LMR") == (1, 1)  # one of each
    assert sides("LMC") == (1, 2)  # one compute + two memory
    # Graph dominants: all memory-intensive.
    for abbr in GRAPH:
        assert sides(abbr)[0] == 0
    # Panel (a): both sides present among molecular kernels.
    assert {p.intensity_class for p in molecular} == {"compute", "memory"}
    # Panel (b): graph kernels predominantly memory-side.
    memory_share = sum(
        1 for p in graph if not p.is_compute_intensive
    ) / len(graph)
    assert memory_share > 0.8
