"""Fig. 2: GPU-time distribution for the Parboil/Rodinia/Tango suites.

Paper shape: ~70 % of the workloads (23/32 listed in Table III) spend
>= 70 % of GPU time in ONE kernel; 7 need two kernels; only two (LUD
and AlexNet) need three.
"""

from repro.analysis.distribution import dominance_histogram, time_share_table


def _collect(prt_run):
    profiles = [
        c.profile
        for suite in ("Parboil", "Rodinia", "Tango")
        for c in prt_run.suite(suite)
    ]
    return dominance_histogram(profiles), profiles


def test_fig02_prt_time_distribution(benchmark, prt_run, save_exhibit):
    histogram, profiles = benchmark(_collect, prt_run)

    lines = ["Fig. 2 — stacked GPU-time shares (top kernels per workload):"]
    for profile in profiles:
        shares = ", ".join(
            f"{name}={share:.0%}"
            for name, share in time_share_table(profile, top=3)
        )
        lines.append(f"  {profile.workload:<16} {shares}")
    lines.append(f"dominance histogram (kernels for 70% of time): {histogram}")
    save_exhibit("fig02_prt_time_distribution", "\n".join(lines))

    assert histogram.get(1, 0) == 23
    assert histogram.get(2, 0) == 7
    assert histogram.get(3, 0) == 2
